//! Property tests for the population generator: structural invariants
//! that must hold for every generated world, across random small
//! configurations.

use hsp_graph::Role;
use hsp_synth::{generate, generate_sharded, ScenarioConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ScenarioConfig> {
    (any::<u64>(), 40u32..120, 0.5f64..1.0, 0.0f64..1.0, 0.0f64..0.6, 0u32..30).prop_map(
        |(seed, size, adoption, p_lie, p_adult, formers)| {
            let mut cfg = ScenarioConfig::tiny();
            cfg.seed = seed;
            cfg.school_size = size;
            cfg.public_enrollment_estimate = size;
            cfg.adoption_rate = adoption;
            cfg.lying.p_lie_when_underage = p_lie;
            cfg.lying.p_lie_to_adult = p_adult;
            cfg.former_students = formers;
            cfg.community_pool_size = 300;
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated worlds satisfy the ground-truth structural invariants
    /// the attack and its evaluation rely on.
    #[test]
    fn generated_world_invariants(cfg in arb_config()) {
        let s = generate(&cfg);
        let net = &s.network;
        let today = net.today;
        let roster = s.roster();

        // Roster size tracks adoption (generously bounded: binomial tails).
        let expected = cfg.school_size as f64 * cfg.adoption_rate;
        prop_assert!(
            (roster.len() as f64) < expected + 30.0 && (roster.len() as f64) > expected - 30.0,
            "roster {} vs expected {expected}", roster.len()
        );

        for u in net.users() {
            // Nobody registered in the future; nobody registered before
            // the OSN existed.
            prop_assert!(u.registration.registration_date <= today);
            prop_assert!(u.registration.registration_date.year() >= 2006);
            // Lying only ever inflates age (registered older than true).
            prop_assert!(
                u.registration.registered_birth_date <= u.true_birth_date,
                "registered younger than true for {}", u.id
            );
            // Students' true ages are 13..19 and consistent with class.
            if let Role::CurrentStudent { grad_year, .. } = u.role {
                let age = u.true_age(today);
                prop_assert!((13..=19).contains(&age), "student age {age}");
                prop_assert!((grad_year - 19..=grad_year - 17).contains(&(u.true_birth_date.year())));
                // Every student has a household in the home city.
                let hh = net.households().of(u.id).expect("student household");
                prop_assert_eq!(hh.city, s.home_city);
            }
            // Alumni truly graduated (class year before current seniors).
            if let Role::Alumnus { grad_year, .. } = u.role {
                prop_assert!(grad_year < net.senior_class_year());
            }
        }

        // Friendship symmetry (sampled).
        for &u in roster.iter().take(20) {
            for &v in net.friends(u) {
                prop_assert!(net.are_friends(v, u));
            }
        }

        // The lying-minor count is bounded by the lying parameters: zero
        // lying probability ⇒ (almost) no lying minors.
        if cfg.lying.p_lie_when_underage == 0.0 {
            prop_assert_eq!(s.lying_minor_students().len(), 0);
        }
    }

    /// Sharded generation is thread-count invariant: building the world
    /// on one thread or many yields byte-identical networks, for any
    /// config. (Each fixed-size chunk owns an independent RNG stream
    /// keyed by chunk index, so the schedule can't leak into the draws.)
    #[test]
    fn sharding_is_thread_invariant((cfg, threads) in (arb_config(), 2usize..9)) {
        let one = generate_sharded(&cfg, 1);
        let many = generate_sharded(&cfg, threads);
        prop_assert_eq!(one.network.fingerprint(), many.network.fingerprint());
    }

    /// Same config ⇒ bit-identical world (the determinism contract the
    /// experiment tables depend on).
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.network.user_count(), b.network.user_count());
        prop_assert_eq!(a.roster(), b.roster());
        for u in a.network.user_ids().take(50) {
            prop_assert_eq!(a.network.friends(u), b.network.friends(u));
            prop_assert_eq!(
                &a.network.user(u).profile.full_name(),
                &b.network.user(u).profile.full_name()
            );
            prop_assert_eq!(
                a.network.user(u).registration.registered_birth_date,
                b.network.user(u).registration.registered_birth_date
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sealed CSR view is an exact image of the builder adjacency.
    /// Serde round-trip always lands in builder (Vec-of-Vec) form — the
    /// seal index never serializes — so a generated (sealed) world and
    /// its round-tripped copy are the two representations of the same
    /// network: fingerprints must match, every friends list must come
    /// back in the same order, and re-sealing must change nothing
    /// observable.
    #[test]
    fn builder_and_sealed_views_agree(cfg in arb_config()) {
        use serde::{Deserialize, Serialize};

        let sealed = generate(&cfg).network;
        prop_assert!(sealed.is_sealed());

        let mut builder =
            hsp_graph::Network::from_json_value(&sealed.to_json_value()).expect("round-trip");
        prop_assert!(!builder.is_sealed());

        // Fingerprint is representation-independent.
        prop_assert_eq!(builder.fingerprint(), sealed.fingerprint());

        // Friends ordering survives the CSR migration bit-for-bit.
        for u in sealed.user_ids() {
            prop_assert_eq!(builder.friends(u), sealed.friends(u));
        }

        // Re-sealing the builder copy is observationally a no-op.
        builder.seal();
        prop_assert_eq!(builder.fingerprint(), sealed.fingerprint());
        for u in sealed.user_ids() {
            prop_assert_eq!(builder.friends(u), sealed.friends(u));
        }

        // A second round-trip — now from a freshly sealed network — is
        // byte-stable too.
        let again =
            hsp_graph::Network::from_json_value(&builder.to_json_value()).expect("round-trip 2");
        prop_assert_eq!(again.fingerprint(), sealed.fingerprint());
    }
}
