//! Churn model: how fast a scenario's population moves.
//!
//! The generator builds a frozen snapshot; the platform's live-world
//! mutation engine replays churn *on top of* that snapshot during the
//! crawl. This module derives the per-tick mutation rates from the same
//! scenario knobs the snapshot was generated with, so the world keeps
//! evolving the way it was built: schools with more transfer churn
//! (`former_students`) deactivate more, denser friendship models
//! re-wire more edges, and lower adoption leaves more residents still
//! signing up.
//!
//! The output is plain per-mille-per-tick rates. `hsp-synth` does not
//! depend on `hsp-platform`; experiment code converts a [`ChurnModel`]
//! into a platform `MutationPlan`.

use crate::config::ScenarioConfig;
use serde::{Deserialize, Serialize};

/// Per-mille-per-tick mutation rates derived from a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnModel {
    pub signup_per_mille: u32,
    pub friend_per_mille: u32,
    pub defriend_per_mille: u32,
    pub privacy_flip_per_mille: u32,
    pub deactivate_per_mille: u32,
}

/// Clamp a rate into valid per-mille, with a floor of 1 for any class
/// the derivation says exists at all (a nonzero process should never
/// round away to "frozen").
fn per_mille(x: f64) -> u32 {
    if x <= 0.0 {
        0
    } else {
        (x.round() as u32).clamp(1, 1_000)
    }
}

impl ChurnModel {
    /// Derive churn rates from the scenario's own population knobs.
    ///
    /// The anchors, per tick of virtual time:
    /// - **signups** scale with the unadopted remainder of the school
    ///   (`(1 - adoption_rate)`) — the stragglers still joining;
    /// - **friendings** scale with within-grade density, the engine of
    ///   new edges in the generator;
    /// - **defriendings** run at half the friending rate (graph keeps
    ///   slowly densifying, matching the generator's bias);
    /// - **privacy flips** scale with how *open* the lying students are
    ///   (openness correlates with activity, the Table 5 link);
    /// - **deactivations** scale with the transfer-churn fraction
    ///   (`former_students / school_size`), the process the paper
    ///   blames for half its HS1 false positives.
    pub fn from_scenario(cfg: &ScenarioConfig) -> ChurnModel {
        let friend = 60.0 * cfg.friendship.within_grade_p;
        let churn_fraction = cfg.former_students as f64 / cfg.school_size.max(1) as f64;
        ChurnModel {
            signup_per_mille: per_mille(40.0 * (1.0 - cfg.adoption_rate)),
            friend_per_mille: per_mille(friend),
            defriend_per_mille: per_mille(friend / 2.0),
            privacy_flip_per_mille: per_mille(25.0 * cfg.lying_student_openness.friend_list_public),
            deactivate_per_mille: per_mille(20.0 * churn_fraction),
        }
    }

    /// Scale every class by `factor`, clamped to valid per-mille.
    /// `0.0` yields the all-zero (frozen) model.
    pub fn scaled(&self, factor: f64) -> ChurnModel {
        let scale = |pm: u32| ((pm as f64 * factor).round() as u32).min(1_000);
        ChurnModel {
            signup_per_mille: scale(self.signup_per_mille),
            friend_per_mille: scale(self.friend_per_mille),
            defriend_per_mille: scale(self.defriend_per_mille),
            privacy_flip_per_mille: scale(self.privacy_flip_per_mille),
            deactivate_per_mille: scale(self.deactivate_per_mille),
        }
    }

    /// Whether any class is active at all.
    pub fn is_frozen(&self) -> bool {
        self.signup_per_mille == 0
            && self.friend_per_mille == 0
            && self.defriend_per_mille == 0
            && self.privacy_flip_per_mille == 0
            && self.deactivate_per_mille == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_derived_and_ordered() {
        let m = ChurnModel::from_scenario(&ScenarioConfig::tiny());
        assert!(!m.is_frozen());
        assert!(m.friend_per_mille > m.defriend_per_mille);
        assert!(m.friend_per_mille <= 1_000);
        // tiny() keeps HS1's 90% adoption → a small but present signup
        // trickle, and a real transfer-churn deactivation rate.
        assert!(m.signup_per_mille >= 1);
        assert!(m.deactivate_per_mille >= 1);
    }

    #[test]
    fn churn_tracks_scenario_knobs() {
        let base = ScenarioConfig::tiny();
        let mut churned = base.clone();
        churned.former_students = base.former_students * 4;
        assert!(
            ChurnModel::from_scenario(&churned).deactivate_per_mille
                > ChurnModel::from_scenario(&base).deactivate_per_mille
        );
        let mut denser = base.clone();
        denser.friendship.within_grade_p = 1.0;
        assert!(
            ChurnModel::from_scenario(&denser).friend_per_mille
                > ChurnModel::from_scenario(&base).friend_per_mille
        );
    }

    #[test]
    fn scaling_to_zero_freezes() {
        let m = ChurnModel::from_scenario(&ScenarioConfig::hs1());
        assert!(m.scaled(0.0).is_frozen());
        assert_eq!(m.scaled(1.0), m);
        assert!(m.scaled(10.0).friend_per_mille >= m.friend_per_mille);
    }
}
