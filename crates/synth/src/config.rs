//! Scenario configuration, with defaults calibrated to the paper's
//! published aggregates (Tables 2–5 and the §5/§6 prose).
//!
//! The real study crawled three US high schools in March/June 2012. Each
//! [`ScenarioConfig`] describes the *generative* counterpart: school
//! size, who is on the OSN, how children lied about their age at
//! registration, how open each group's privacy settings are, and how the
//! friendship graph is wired. The constructors [`ScenarioConfig::hs1`],
//! [`hs2`](ScenarioConfig::hs2) and [`hs3`](ScenarioConfig::hs3) encode
//! the per-school calibration targets listed in DESIGN.md §4.

// Seeds group as 0x<school>_<year>_<month> on purpose (crawl identity).
#![allow(clippy::unusual_byte_groupings)]

use hsp_graph::Date;
use serde::{Deserialize, Serialize};

/// Privacy/profile-openness distribution for one group of accounts.
///
/// Probabilities are per-account independent coin flips; the Table 5
/// columns are the calibration sources for the student groups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpennessProfile {
    /// P(friend list audience = Public).
    pub friend_list_public: f64,
    /// P(account appears in public search).
    pub public_search: f64,
    /// P(Message button exposed to strangers).
    pub message_public: f64,
    /// P(education entries are stranger-visible) — *given* the user
    /// listed their school at all.
    pub education_public: f64,
    /// P(the user lists their current high school + grad year on the
    /// profile at all).
    pub lists_school: f64,
    /// P(current city is filled in and public).
    pub lists_city: f64,
    /// P(relationship status shown publicly).
    pub relationship_public: f64,
    /// P("interested in" shown publicly).
    pub interested_in_public: f64,
    /// P(full birthday public).
    pub birthday_public: f64,
    /// Mean of the (geometric-ish) shared-photo count distribution.
    pub photos_mean: f64,
    /// P(hometown public).
    pub hometown_public: f64,
}

impl OpennessProfile {
    /// A locked-down baseline (registered minors mostly keep defaults;
    /// the platform hard-caps them anyway on Facebook).
    pub fn reserved() -> Self {
        OpennessProfile {
            friend_list_public: 0.05,
            public_search: 0.30,
            message_public: 0.20,
            education_public: 0.50,
            lists_school: 0.15,
            lists_city: 0.30,
            relationship_public: 0.10,
            interested_in_public: 0.08,
            birthday_public: 0.03,
            photos_mean: 8.0,
            hometown_public: 0.20,
        }
    }
}

/// How children handled the under-13 registration ban (paper §1
/// observations 1–2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LyingModel {
    /// Mean age at which students joined the OSN.
    pub join_age_mean: f64,
    /// Standard deviation of the join age.
    pub join_age_std: f64,
    /// Among those who wanted to join before 13: probability they lied
    /// (the rest waited until 13 and registered truthfully).
    pub p_lie_when_underage: f64,
    /// Among liars: probability of claiming to be 18+ immediately
    /// (versus claiming to be just 13).
    pub p_lie_to_adult: f64,
    /// Among "claim 13" liars: extra years added beyond the minimum
    /// needed, sampled uniformly from `0..=extra_years_max`.
    pub extra_years_max: i32,
}

impl Default for LyingModel {
    fn default() -> Self {
        LyingModel {
            join_age_mean: 11.8,
            join_age_std: 1.6,
            p_lie_when_underage: 0.82,
            p_lie_to_adult: 0.24,
            extra_years_max: 2,
        }
    }
}

/// A COPPA-less world: everyone registers truthfully (a tiny joke-lie
/// residual remains, per §7's discussion).
impl LyingModel {
    pub fn coppaless() -> Self {
        LyingModel { p_lie_when_underage: 0.02, p_lie_to_adult: 0.5, ..Self::default() }
    }
}

/// Friendship-formation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FriendshipModel {
    /// P(edge) between two students in the same graduating class.
    pub within_grade_p: f64,
    /// P(edge) between students one grade apart; halves per extra year.
    pub cross_grade_p: f64,
    /// Mean number of non-school friends per student (community pool,
    /// alumni, relatives). Public-friend-list users tend to be more
    /// active; their count is scaled by `open_degree_boost`.
    pub nonschool_friends_mean: f64,
    /// Multiplier on friend counts for users with public friend lists
    /// (openness correlates with activity; needed to hit Table 5's
    /// "avg # friends for users who make friend list public").
    pub open_degree_boost: f64,
    /// Mean number of current-student friends per recent alumnus,
    /// decaying by `alumni_decay` per year since graduation.
    pub alumni_to_student_mean: f64,
    pub alumni_decay: f64,
    /// Mean number of current-student friends a former (transferred)
    /// student retains.
    pub former_to_student_mean: f64,
}

impl Default for FriendshipModel {
    fn default() -> Self {
        FriendshipModel {
            within_grade_p: 0.55,
            cross_grade_p: 0.08,
            nonschool_friends_mean: 280.0,
            open_degree_boost: 1.35,
            alumni_to_student_mean: 14.0,
            alumni_decay: 0.5,
            former_to_student_mean: 35.0,
        }
    }
}

/// Full description of one target-school world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Label, e.g. "HS1".
    pub name: String,
    /// RNG seed — every table regenerates bit-identically from it.
    pub seed: u64,
    /// Simulated crawl date.
    pub today: Date,
    /// True enrolment (the paper's attacker reads a public estimate off
    /// Wikipedia; we expose the same rounded figure to the attack).
    pub school_size: u32,
    pub public_enrollment_estimate: u32,
    /// Fraction of students with OSN accounts (~90 %: the paper failed
    /// to find IDs for about 10 % of HS1).
    pub adoption_rate: f64,
    /// Recent graduated classes that exist in the population.
    pub alumni_cohorts: u32,
    /// Fraction of each alumni cohort on the OSN *and* publicly listing
    /// the school (these dominate the paper's seed sets).
    pub alumni_visibility: f64,
    /// Community members (city adults, relatives, other-school contacts)
    /// forming the non-school friend pool.
    pub community_pool_size: u32,
    /// Former students who transferred out (the churn the paper blames
    /// for half its false positives at HS1).
    pub former_students: u32,
    /// P(a student has a parent account friended to them).
    pub parent_prob: f64,
    pub lying: LyingModel,
    pub friendship: FriendshipModel,
    /// Openness of minors *registered as adults* (Table 5 calibration).
    pub lying_student_openness: OpennessProfile,
    /// Openness of truthfully-registered students.
    pub truthful_student_openness: OpennessProfile,
    /// Openness of alumni / community adults.
    pub adult_openness: OpennessProfile,
}

impl ScenarioConfig {
    /// Upper-bound estimate of the users this scenario commits, used to
    /// pre-size `Network::with_capacity` so generation never re-grows
    /// the user or adjacency tables mid-build.
    pub fn expected_users(&self) -> usize {
        let students = self.school_size as usize;
        // One alumni cohort is roughly a graduating class (a quarter of
        // the school), and at most one parent account exists per student.
        let alumni = self.alumni_cohorts as usize * (students / 4 + 1);
        students
            + students // parents
            + alumni
            + self.former_students as usize
            + self.community_pool_size as usize
    }

    /// HS1: the small private urban school (362 students, ~325 on the
    /// OSN, crawled March 2012, high churn, relatively reserved student
    /// body — Table 5 column 1).
    pub fn hs1() -> Self {
        ScenarioConfig {
            name: "HS1".into(),
            seed: 0x51_2012_03,
            today: Date::ymd(2012, 3, 15),
            school_size: 362,
            public_enrollment_estimate: 360,
            adoption_rate: 0.90,
            alumni_cohorts: 8,
            alumni_visibility: 0.60,
            community_pool_size: 40_000,
            former_students: 150,
            parent_prob: 0.5,
            lying: LyingModel {
                // HS1's private-school population lied less: the paper
                // found 112/325 (34 %) minors registered as adults.
                join_age_mean: 12.3,
                p_lie_when_underage: 0.75,
                p_lie_to_adult: 0.22,
                ..LyingModel::default()
            },
            friendship: FriendshipModel {
                within_grade_p: 0.62,
                cross_grade_p: 0.10,
                nonschool_friends_mean: 290.0,
                ..FriendshipModel::default()
            },
            lying_student_openness: OpennessProfile {
                friend_list_public: 0.73,
                public_search: 0.71,
                message_public: 0.89,
                education_public: 0.85,
                lists_school: 0.12,
                lists_city: 0.45,
                relationship_public: 0.15,
                interested_in_public: 0.13,
                birthday_public: 0.09,
                photos_mean: 19.0,
                hometown_public: 0.35,
            },
            truthful_student_openness: OpennessProfile::reserved(),
            adult_openness: OpennessProfile {
                friend_list_public: 0.70,
                public_search: 0.85,
                message_public: 0.80,
                education_public: 0.80,
                lists_school: 0.55,
                lists_city: 0.60,
                relationship_public: 0.30,
                interested_in_public: 0.20,
                birthday_public: 0.10,
                photos_mean: 40.0,
                hometown_public: 0.40,
            },
        }
    }

    /// HS2: large public suburban East-Coast school (~1,500 students,
    /// crawled June 2012, more open student body — Table 5 column 2).
    pub fn hs2() -> Self {
        ScenarioConfig {
            name: "HS2".into(),
            seed: 0x52_2012_06,
            today: Date::ymd(2012, 6, 10),
            school_size: 1500,
            public_enrollment_estimate: 1500,
            adoption_rate: 0.90,
            alumni_cohorts: 16,
            alumni_visibility: 0.62,
            community_pool_size: 14_000,
            former_students: 320,
            parent_prob: 0.5,
            lying: LyingModel {
                // More early joiners / bolder lying than HS1: Table 5
                // shows ~47 % of HS2 minors registered as adults.
                join_age_mean: 11.4,
                p_lie_when_underage: 0.88,
                p_lie_to_adult: 0.30,
                ..LyingModel::default()
            },
            friendship: FriendshipModel {
                within_grade_p: 0.52,
                cross_grade_p: 0.07,
                nonschool_friends_mean: 520.0,
                ..FriendshipModel::default()
            },
            lying_student_openness: OpennessProfile {
                friend_list_public: 0.77,
                public_search: 0.80,
                message_public: 0.86,
                education_public: 0.85,
                lists_school: 0.19,
                lists_city: 0.55,
                relationship_public: 0.26,
                interested_in_public: 0.20,
                birthday_public: 0.04,
                photos_mean: 51.0,
                hometown_public: 0.40,
            },
            truthful_student_openness: OpennessProfile::reserved(),
            adult_openness: ScenarioConfig::hs1().adult_openness,
        }
    }

    /// HS3: large public Midwest school (~1,500 students, crawled June
    /// 2012, the most open student body — Table 5 column 3).
    pub fn hs3() -> Self {
        let mut cfg = Self::hs2();
        cfg.name = "HS3".into();
        cfg.seed = 0x53_2012_06;
        cfg.community_pool_size = 12_000;
        cfg.former_students = 280;
        cfg.lying.p_lie_when_underage = 0.93;
        cfg.lying.p_lie_to_adult = 0.38;
        cfg.lying.join_age_mean = 11.2;
        cfg.friendship.nonschool_friends_mean = 480.0;
        cfg.lying_student_openness = OpennessProfile {
            friend_list_public: 0.87,
            public_search: 0.86,
            message_public: 0.91,
            education_public: 0.85,
            lists_school: 0.13,
            lists_city: 0.55,
            relationship_public: 0.34,
            interested_in_public: 0.33,
            birthday_public: 0.06,
            photos_mean: 57.0,
            hometown_public: 0.40,
        };
        cfg
    }

    /// A deliberately small scenario for fast unit/integration tests:
    /// the same structure as HS1 at 1/6 scale.
    pub fn tiny() -> Self {
        let mut cfg = Self::hs1();
        cfg.name = "TINY".into();
        cfg.seed = 0x7e59;
        cfg.school_size = 128;
        cfg.public_enrollment_estimate = 128;
        cfg.alumni_cohorts = 4;
        cfg.community_pool_size = 1200;
        cfg.former_students = 20;
        cfg.friendship.nonschool_friends_mean = 30.0;
        cfg.friendship.within_grade_p = 0.7;
        // Keep group proportions sane at 1/6 scale: a transfer's
        // residual ties must stay below the class size, and the small
        // core needs a slightly higher listing rate to be stable.
        cfg.friendship.former_to_student_mean = 6.0;
        cfg.friendship.alumni_to_student_mean = 5.0;
        cfg.lying_student_openness.lists_school = 0.35;
        cfg
    }

    /// A benchmark-sized scenario between TINY and HS1: big enough
    /// that fixed per-run costs (file setup, a handful of fsyncs)
    /// amortize below measurement noise, small enough that a timing
    /// gate stays fast. Used by the crash-recovery overhead gate.
    pub fn bench() -> Self {
        let mut cfg = Self::tiny();
        cfg.name = "BENCH".into();
        cfg.seed = 0xbe4c;
        cfg.school_size = 256;
        cfg.public_enrollment_estimate = 256;
        cfg.community_pool_size = 2400;
        cfg.former_students = 40;
        cfg
    }

    /// The same scenario regenerated in a world without COPPA's age
    /// restriction: children register truthfully (§7's assumption).
    pub fn without_coppa(&self) -> Self {
        let mut cfg = self.clone();
        cfg.name = format!("{}-noCOPPA", self.name);
        cfg.lying = LyingModel::coppaless();
        cfg
    }

    /// The four graduating classes enrolled on the crawl date.
    pub fn enrolled_classes(&self) -> [i32; 4] {
        hsp_graph::SchoolCalendar::default().enrolled_classes(self.today)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_constructors_are_distinct() {
        assert_eq!(ScenarioConfig::hs1().school_size, 362);
        assert_eq!(ScenarioConfig::hs2().school_size, 1500);
        assert_ne!(ScenarioConfig::hs2().seed, ScenarioConfig::hs3().seed);
        assert!(ScenarioConfig::hs3().lying_student_openness.friend_list_public > 0.8);
    }

    #[test]
    fn coppaless_variant_clears_lying() {
        let c = ScenarioConfig::hs1().without_coppa();
        assert!(c.lying.p_lie_when_underage < 0.05);
        assert_eq!(c.school_size, 362);
        assert!(c.name.contains("noCOPPA"));
    }

    #[test]
    fn enrolled_classes_for_march_2012() {
        assert_eq!(ScenarioConfig::hs1().enrolled_classes(), [2015, 2014, 2013, 2012]);
    }

    #[test]
    fn hs2_crawled_in_june_keeps_2012_seniors() {
        // June 2012 is before the July rollover: seniors are class of 2012.
        assert_eq!(ScenarioConfig::hs2().enrolled_classes(), [2015, 2014, 2013, 2012]);
    }
}
