//! Deterministic synthetic name generation.
//!
//! Entirely fictional people: names are drawn from fixed pools, so no
//! real person's data can appear in a generated world.

use hsp_graph::Gender;
use rand::Rng;

const FEMALE_FIRST: &[&str] = &[
    "Ava", "Mia", "Zoe", "Lily", "Emma", "Nora", "Ruby", "Ella", "Ivy", "Maya", "Chloe", "Grace",
    "Hannah", "Sofia", "Layla", "Aria", "Nina", "Tess", "Cora", "Jade", "Paige", "Quinn", "Rosa",
    "Sara", "Tara", "Uma", "Vera", "Wren", "Luz", "Yara", "Dana", "Erin", "Faye", "Gina", "Hope",
    "Iris", "June", "Kate", "Lena", "Mona",
];

const MALE_FIRST: &[&str] = &[
    "Eli", "Max", "Leo", "Sam", "Ben", "Jack", "Owen", "Luke", "Noah", "Ryan", "Cole", "Evan",
    "Liam", "Mark", "Nate", "Omar", "Paul", "Reed", "Seth", "Troy", "Wade", "Zane", "Alan",
    "Blake", "Carl", "Drew", "Emmett", "Felix", "Gus", "Hank", "Ivan", "Joel", "Kyle", "Lars",
    "Miles", "Neil", "Otto", "Pete", "Quinn", "Ross",
];

const LAST: &[&str] = &[
    "Abbott",
    "Barnes",
    "Castillo",
    "Delgado",
    "Ellison",
    "Fleming",
    "Garrett",
    "Hobbs",
    "Ibarra",
    "Jennings",
    "Keller",
    "Lowery",
    "McBride",
    "Norwood",
    "Ortega",
    "Pruitt",
    "Quintana",
    "Rollins",
    "Sandoval",
    "Tillman",
    "Underwood",
    "Vasquez",
    "Whitfield",
    "Xiong",
    "Yates",
    "Zamora",
    "Ashford",
    "Boyle",
    "Crane",
    "Dalton",
    "Emery",
    "Foss",
    "Granger",
    "Hale",
    "Ingram",
    "Jarvis",
    "Kemp",
    "Landry",
    "Mercer",
    "Nash",
    "Odom",
    "Pike",
    "Quigley",
    "Rhodes",
    "Slater",
    "Thorne",
    "Upton",
    "Vance",
    "Walsh",
    "York",
];

/// Draw a gender (roughly balanced).
pub fn sample_gender(rng: &mut impl Rng) -> Gender {
    if rng.gen_bool(0.5) {
        Gender::Female
    } else {
        Gender::Male
    }
}

/// Draw a first name matching `gender`.
pub fn sample_first_name(rng: &mut impl Rng, gender: Gender) -> &'static str {
    match gender {
        Gender::Female => FEMALE_FIRST[rng.gen_range(0..FEMALE_FIRST.len())],
        Gender::Male => MALE_FIRST[rng.gen_range(0..MALE_FIRST.len())],
        Gender::Unspecified => {
            if rng.gen_bool(0.5) {
                FEMALE_FIRST[rng.gen_range(0..FEMALE_FIRST.len())]
            } else {
                MALE_FIRST[rng.gen_range(0..MALE_FIRST.len())]
            }
        }
    }
}

const LAST_PREFIX: &[&str] = &[
    "Ash", "Black", "Briar", "Clay", "Cross", "Dun", "East", "Fair", "Fern", "Gold", "Gray",
    "Green", "Hart", "Haw", "Hazel", "High", "Holt", "Iron", "Kings", "Lake", "Long", "Marsh",
    "Mill", "Moor", "North", "Oak", "Red", "Ridge", "Rock", "Rose", "Sand", "Shaw", "Silver",
    "Snow", "Stone", "Strat", "Thorn", "Wald", "West", "Wind",
];

const LAST_SUFFIX: &[&str] = &[
    "berg", "born", "bridge", "brook", "bury", "by", "cliff", "combe", "cote", "dale", "den",
    "field", "ford", "gate", "grove", "ham", "hurst", "land", "ley", "lock", "man", "mere", "more",
    "mount", "pool", "port", "ridge", "shaw", "stead", "stock", "stone", "ton", "wall", "ward",
    "water", "well", "wick", "wood", "worth", "yard",
];

const LAST_MID: &[&str] = &[
    "inga", "er", "en", "el", "ow", "ar", "ama", "ona", "ey", "is", "or", "an", "ell", "und",
    "ing", "os", "ede", "ura", "ani", "emi",
];

/// Draw a surname with a realistic head/tail frequency split:
///
/// - 10 % from a short curated list (the "Smiths" — always ambiguous in
///   a city-scale voter roll);
/// - 55 % two-syllable composites (~1,600 forms — a handful of
///   households per city);
/// - 35 % three-syllable composites (~32,000 forms — usually unique).
///
/// This is what makes the §2 record-linking threat behave like reality:
/// rare-surname students resolve by (surname, city) alone, common-
/// surname students only resolve through the friend-list confirmation.
pub fn sample_last_name(rng: &mut impl Rng) -> String {
    let r: f64 = rng.gen();
    if r < 0.10 {
        LAST[rng.gen_range(0..LAST.len())].to_string()
    } else if r < 0.65 {
        format!(
            "{}{}",
            LAST_PREFIX[rng.gen_range(0..LAST_PREFIX.len())],
            LAST_SUFFIX[rng.gen_range(0..LAST_SUFFIX.len())]
        )
    } else {
        format!(
            "{}{}{}",
            LAST_PREFIX[rng.gen_range(0..LAST_PREFIX.len())],
            LAST_MID[rng.gen_range(0..LAST_MID.len())],
            LAST_SUFFIX[rng.gen_range(0..LAST_SUFFIX.len())]
        )
    }
}

const STREETS: &[&str] = &[
    "Oak St",
    "Maple Ave",
    "Cedar Ln",
    "Birch Rd",
    "Elm St",
    "Willow Way",
    "Aspen Ct",
    "Chestnut Blvd",
    "Sycamore Dr",
    "Juniper Pl",
    "Magnolia Ave",
    "Poplar St",
    "Hickory Ln",
    "Laurel Rd",
    "Alder Way",
    "Hawthorn Ct",
    "Linden Dr",
    "Spruce St",
    "Walnut Ave",
    "Dogwood Ln",
];

/// Generate a synthetic street address like "412 Maple Ave".
pub fn sample_address(rng: &mut impl Rng) -> String {
    format!("{} {}", rng.gen_range(1..=999), STREETS[rng.gen_range(0..STREETS.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = sample_gender(&mut rng);
            (g, sample_first_name(&mut rng, g), sample_last_name(&mut rng))
        };
        assert_eq!(draw(7), draw(7));
        // Different seeds give different sequences at least sometimes.
        assert!((0..20).any(|s| draw(s) != draw(s + 1000)));
    }

    #[test]
    fn gendered_names_come_from_matching_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(FEMALE_FIRST.contains(&sample_first_name(&mut rng, Gender::Female)));
            assert!(MALE_FIRST.contains(&sample_first_name(&mut rng, Gender::Male)));
        }
    }
}
