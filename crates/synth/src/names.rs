//! Deterministic synthetic name generation.
//!
//! Entirely fictional people: names are drawn from fixed pools, so no
//! real person's data can appear in a generated world.

use hsp_graph::{Gender, Sym};
use rand::{Rng, RngCore};
use std::sync::OnceLock;

const FEMALE_FIRST: &[&str] = &[
    "Ava", "Mia", "Zoe", "Lily", "Emma", "Nora", "Ruby", "Ella", "Ivy", "Maya", "Chloe", "Grace",
    "Hannah", "Sofia", "Layla", "Aria", "Nina", "Tess", "Cora", "Jade", "Paige", "Quinn", "Rosa",
    "Sara", "Tara", "Uma", "Vera", "Wren", "Luz", "Yara", "Dana", "Erin", "Faye", "Gina", "Hope",
    "Iris", "June", "Kate", "Lena", "Mona",
];

const MALE_FIRST: &[&str] = &[
    "Eli", "Max", "Leo", "Sam", "Ben", "Jack", "Owen", "Luke", "Noah", "Ryan", "Cole", "Evan",
    "Liam", "Mark", "Nate", "Omar", "Paul", "Reed", "Seth", "Troy", "Wade", "Zane", "Alan",
    "Blake", "Carl", "Drew", "Emmett", "Felix", "Gus", "Hank", "Ivan", "Joel", "Kyle", "Lars",
    "Miles", "Neil", "Otto", "Pete", "Quinn", "Ross",
];

const LAST: &[&str] = &[
    "Abbott",
    "Barnes",
    "Castillo",
    "Delgado",
    "Ellison",
    "Fleming",
    "Garrett",
    "Hobbs",
    "Ibarra",
    "Jennings",
    "Keller",
    "Lowery",
    "McBride",
    "Norwood",
    "Ortega",
    "Pruitt",
    "Quintana",
    "Rollins",
    "Sandoval",
    "Tillman",
    "Underwood",
    "Vasquez",
    "Whitfield",
    "Xiong",
    "Yates",
    "Zamora",
    "Ashford",
    "Boyle",
    "Crane",
    "Dalton",
    "Emery",
    "Foss",
    "Granger",
    "Hale",
    "Ingram",
    "Jarvis",
    "Kemp",
    "Landry",
    "Mercer",
    "Nash",
    "Odom",
    "Pike",
    "Quigley",
    "Rhodes",
    "Slater",
    "Thorne",
    "Upton",
    "Vance",
    "Walsh",
    "York",
];

/// Draw a gender (roughly balanced).
pub fn sample_gender(rng: &mut impl Rng) -> Gender {
    if rng.gen_bool(0.5) {
        Gender::Female
    } else {
        Gender::Male
    }
}

/// Draw a first name matching `gender`.
pub fn sample_first_name(rng: &mut impl Rng, gender: Gender) -> &'static str {
    match gender {
        Gender::Female => FEMALE_FIRST[rng.gen_range(0..FEMALE_FIRST.len())],
        Gender::Male => MALE_FIRST[rng.gen_range(0..MALE_FIRST.len())],
        Gender::Unspecified => {
            if rng.gen_bool(0.5) {
                FEMALE_FIRST[rng.gen_range(0..FEMALE_FIRST.len())]
            } else {
                MALE_FIRST[rng.gen_range(0..MALE_FIRST.len())]
            }
        }
    }
}

const LAST_PREFIX: &[&str] = &[
    "Ash", "Black", "Briar", "Clay", "Cross", "Dun", "East", "Fair", "Fern", "Gold", "Gray",
    "Green", "Hart", "Haw", "Hazel", "High", "Holt", "Iron", "Kings", "Lake", "Long", "Marsh",
    "Mill", "Moor", "North", "Oak", "Red", "Ridge", "Rock", "Rose", "Sand", "Shaw", "Silver",
    "Snow", "Stone", "Strat", "Thorn", "Wald", "West", "Wind",
];

const LAST_SUFFIX: &[&str] = &[
    "berg", "born", "bridge", "brook", "bury", "by", "cliff", "combe", "cote", "dale", "den",
    "field", "ford", "gate", "grove", "ham", "hurst", "land", "ley", "lock", "man", "mere", "more",
    "mount", "pool", "port", "ridge", "shaw", "stead", "stock", "stone", "ton", "wall", "ward",
    "water", "well", "wick", "wood", "worth", "yard",
];

const LAST_MID: &[&str] = &[
    "inga", "er", "en", "el", "ow", "ar", "ama", "ona", "ey", "is", "or", "an", "ell", "und",
    "ing", "os", "ede", "ura", "ani", "emi",
];

/// Draw a surname with a realistic head/tail frequency split:
///
/// - 10 % from a short curated list (the "Smiths" — always ambiguous in
///   a city-scale voter roll);
/// - 55 % two-syllable composites (~1,600 forms — a handful of
///   households per city);
/// - 35 % three-syllable composites (~32,000 forms — usually unique).
///
/// This is what makes the §2 record-linking threat behave like reality:
/// rare-surname students resolve by (surname, city) alone, common-
/// surname students only resolve through the friend-list confirmation.
pub fn sample_last_name(rng: &mut impl Rng) -> String {
    let r: f64 = rng.gen();
    if r < 0.10 {
        LAST[rng.gen_range(0..LAST.len())].to_string()
    } else if r < 0.65 {
        format!(
            "{}{}",
            LAST_PREFIX[rng.gen_range(0..LAST_PREFIX.len())],
            LAST_SUFFIX[rng.gen_range(0..LAST_SUFFIX.len())]
        )
    } else {
        format!(
            "{}{}{}",
            LAST_PREFIX[rng.gen_range(0..LAST_PREFIX.len())],
            LAST_MID[rng.gen_range(0..LAST_MID.len())],
            LAST_SUFFIX[rng.gen_range(0..LAST_SUFFIX.len())]
        )
    }
}

/// Every name the samplers can produce, pre-interned as [`Sym`]s.
///
/// The composite-surname universe is finite (~33k forms), so the
/// metro-scale generator interns it once up front; after that, sampling
/// a name is an index into these tables — no `format!`, no allocation,
/// and no interner lock on the per-user hot path.
pub struct NameSymPools {
    pub female_first: Vec<Sym>,
    pub male_first: Vec<Sym>,
    /// The curated head list (the always-ambiguous "Smiths").
    pub last_head: Vec<Sym>,
    /// All two-syllable prefix+suffix composites.
    pub last_two: Vec<Sym>,
    /// All three-syllable prefix+mid+suffix composites.
    pub last_three: Vec<Sym>,
}

impl NameSymPools {
    /// Index into `pool` with one `next_u64` and a multiply-shift
    /// reduction — no division, no rejection loop. The metro generator
    /// draws two names per user for a million-plus users; `gen_range`'s
    /// u128 modulo is measurable at that volume.
    #[inline]
    fn pick(pool: &[Sym], rng: &mut impl RngCore) -> Sym {
        pool[(((rng.next_u64() as u128) * (pool.len() as u128)) >> 64) as usize]
    }

    /// Allocation- and division-free first-name draw.
    #[inline]
    pub fn first(&self, rng: &mut impl RngCore, gender: Gender) -> Sym {
        match gender {
            Gender::Female => Self::pick(&self.female_first, rng),
            Gender::Male => Self::pick(&self.male_first, rng),
            Gender::Unspecified => {
                if rng.next_u64() & 1 == 0 {
                    Self::pick(&self.female_first, rng)
                } else {
                    Self::pick(&self.male_first, rng)
                }
            }
        }
    }

    /// Allocation- and division-free surname draw with the same 10/55/35
    /// head/two/three split as [`sample_last_name`].
    #[inline]
    pub fn last(&self, rng: &mut impl RngCore) -> Sym {
        // 53-bit mantissa draw, same split points as the f64 path.
        let r = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if r < 0.10 {
            Self::pick(&self.last_head, rng)
        } else if r < 0.65 {
            Self::pick(&self.last_two, rng)
        } else {
            Self::pick(&self.last_three, rng)
        }
    }
}

/// The process-wide pre-interned pools, built on first use.
pub fn name_sym_pools() -> &'static NameSymPools {
    static POOLS: OnceLock<NameSymPools> = OnceLock::new();
    POOLS.get_or_init(|| {
        let mut last_two = Vec::with_capacity(LAST_PREFIX.len() * LAST_SUFFIX.len());
        let mut last_three =
            Vec::with_capacity(LAST_PREFIX.len() * LAST_MID.len() * LAST_SUFFIX.len());
        let mut buf = String::new();
        for p in LAST_PREFIX {
            for s in LAST_SUFFIX {
                buf.clear();
                buf.push_str(p);
                buf.push_str(s);
                last_two.push(Sym::new(&buf));
            }
            for m in LAST_MID {
                for s in LAST_SUFFIX {
                    buf.clear();
                    buf.push_str(p);
                    buf.push_str(m);
                    buf.push_str(s);
                    last_three.push(Sym::new(&buf));
                }
            }
        }
        NameSymPools {
            female_first: FEMALE_FIRST.iter().map(|n| Sym::new(n)).collect(),
            male_first: MALE_FIRST.iter().map(|n| Sym::new(n)).collect(),
            last_head: LAST.iter().map(|n| Sym::new(n)).collect(),
            last_two,
            last_three,
        }
    })
}

/// Allocation-free first-name draw from the pre-interned pools.
pub fn sample_first_sym(rng: &mut impl Rng, gender: Gender) -> Sym {
    let p = name_sym_pools();
    let pool = match gender {
        Gender::Female => &p.female_first,
        Gender::Male => &p.male_first,
        Gender::Unspecified => {
            if rng.gen_bool(0.5) {
                &p.female_first
            } else {
                &p.male_first
            }
        }
    };
    pool[rng.gen_range(0..pool.len())]
}

/// Allocation-free surname draw with the same head/tail frequency split
/// as [`sample_last_name`] (10 % head / 55 % two-syllable / 35 %
/// three-syllable).
pub fn sample_last_sym(rng: &mut impl Rng) -> Sym {
    let p = name_sym_pools();
    let r: f64 = rng.gen();
    if r < 0.10 {
        p.last_head[rng.gen_range(0..p.last_head.len())]
    } else if r < 0.65 {
        p.last_two[rng.gen_range(0..p.last_two.len())]
    } else {
        p.last_three[rng.gen_range(0..p.last_three.len())]
    }
}

const STREETS: &[&str] = &[
    "Oak St",
    "Maple Ave",
    "Cedar Ln",
    "Birch Rd",
    "Elm St",
    "Willow Way",
    "Aspen Ct",
    "Chestnut Blvd",
    "Sycamore Dr",
    "Juniper Pl",
    "Magnolia Ave",
    "Poplar St",
    "Hickory Ln",
    "Laurel Rd",
    "Alder Way",
    "Hawthorn Ct",
    "Linden Dr",
    "Spruce St",
    "Walnut Ave",
    "Dogwood Ln",
];

/// Generate a synthetic street address like "412 Maple Ave".
pub fn sample_address(rng: &mut impl Rng) -> String {
    format!("{} {}", rng.gen_range(1..=999), STREETS[rng.gen_range(0..STREETS.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = sample_gender(&mut rng);
            (g, sample_first_name(&mut rng, g), sample_last_name(&mut rng))
        };
        assert_eq!(draw(7), draw(7));
        // Different seeds give different sequences at least sometimes.
        assert!((0..20).any(|s| draw(s) != draw(s + 1000)));
    }

    #[test]
    fn gendered_names_come_from_matching_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(FEMALE_FIRST.contains(&sample_first_name(&mut rng, Gender::Female)));
            assert!(MALE_FIRST.contains(&sample_first_name(&mut rng, Gender::Male)));
        }
    }
}
