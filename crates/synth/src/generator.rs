//! Builds a complete synthetic world from a [`ScenarioConfig`].
//!
//! Population groups (see DESIGN.md §2 "hsp-synth"):
//!
//! - **Current students** of the target school, split over four classes,
//!   with the age-lying model deciding their registered birth dates and
//!   Table 5-calibrated openness for those registered as adults.
//! - **Former students** (churn): transferred out but often still
//!   listing the school with a current/future grad year — the paper's
//!   main false-positive source.
//! - **Alumni** of recent cohorts: adults who publicly list the school;
//!   they dominate the search portal's results, exactly as in §3.1.
//! - **Parents** friended to their children.
//! - A **community pool** of unrelated adults providing the bulk of the
//!   students' non-school friends (and hence of the candidate set).
//!
//! # Sharded generation
//!
//! Generation is split into *phases* (students, former, alumni, …,
//! circles), and each phase into fixed-size chunks of [`CHUNK`] items.
//! Every chunk draws from its own `SplitMix64`-derived RNG stream keyed
//! by `(scenario seed, phase id, chunk index)`, so the random draws a
//! chunk makes never depend on which thread ran it or on how many
//! threads exist. Chunks are *specced* in parallel and *committed*
//! strictly in chunk order on the calling thread — user ids, household
//! ids and every downstream structure come out identical at any thread
//! count ([`generate_sharded`] with 1 thread ≡ with N threads, bit for
//! bit).

use crate::config::ScenarioConfig;
use crate::lying::{add_years, geometric_with_mean, normal, sample_registration};
use crate::names::{sample_address, sample_first_name, sample_gender, sample_last_name};
use crate::privacy_assign::{sample_account_calibrated, ProfileExtras};
use crate::scenario::Scenario;
use hsp_graph::{
    Date, EducationEntry, Network, ProfileContent, Registration, Role, School, SchoolId,
    SchoolKind, User, UserId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Items per RNG stream. Fixed (never derived from the thread count) so
/// the chunk boundaries — and therefore every draw — are identical no
/// matter how many threads run the build.
pub const CHUNK: usize = 64;

/// Phase ids salting the per-chunk RNG streams. Two phases may process
/// the same item range; distinct ids keep their streams uncorrelated.
mod phase {
    pub const STUDENTS: u64 = 1;
    pub const FORMER: u64 = 2;
    pub const ALUMNI: u64 = 3;
    pub const PARENTS: u64 = 4;
    pub const POOL: u64 = 5;
    pub const SOCIABILITY: u64 = 6;
    pub const EDGES_CLASSMATES: u64 = 7;
    pub const EDGES_COMMUNITY: u64 = 8;
    pub const EDGES_FORMER: u64 = 9;
    pub const EDGES_ALUMNI: u64 = 10;
    pub const INTERACTIONS: u64 = 11;
    pub const CIRCLES_KEEP: u64 = 12;
    pub const CIRCLES_FOLLOW: u64 = 13;
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The independent RNG stream for one chunk of one phase.
pub(crate) fn stream_rng(seed: u64, phase: u64, chunk: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        seed ^ splitmix64(phase.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ splitmix64(chunk)),
    ))
}

/// Run `f(chunk_index)` for every chunk, on up to `threads` worker
/// threads, and return the results in chunk order. Work is handed out
/// by an atomic cursor (chunks are cheap and uniform enough that
/// claiming whole chunks is all the balancing needed); the output slot
/// per chunk keeps the collection order deterministic regardless of
/// completion order.
pub(crate) fn run_chunks<T: Send>(
    threads: usize,
    n_chunks: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                *slots[c].lock().unwrap() = Some(f(c));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().unwrap().expect("chunk computed")).collect()
}

/// Spec one phase: run `per_item(rng, item_index)` for items
/// `0..n_items` in [`CHUNK`]-sized chunks, each chunk on its own RNG
/// stream, and return the per-item outputs in item order.
pub(crate) fn sharded<T: Send>(
    seed: u64,
    phase: u64,
    threads: usize,
    n_items: usize,
    per_item: impl Fn(&mut StdRng, usize) -> T + Sync,
) -> Vec<T> {
    sharded_chunks(seed, phase, threads, n_items, per_item).into_iter().flatten().collect()
}

/// [`sharded`] without the final flatten: the per-chunk vectors are
/// returned as produced (still in item order). Metro-scale callers
/// consume them through a lazy `flatten()` iterator, which skips one
/// full copy of every generated item — at a million ~300-byte users
/// that copy is a measurable slice of the build.
pub(crate) fn sharded_chunks<T: Send>(
    seed: u64,
    phase: u64,
    threads: usize,
    n_items: usize,
    per_item: impl Fn(&mut StdRng, usize) -> T + Sync,
) -> Vec<Vec<T>> {
    let n_chunks = n_items.div_ceil(CHUNK);
    run_chunks(threads, n_chunks, |c| {
        let mut rng = stream_rng(seed, phase, c as u64);
        let lo = c * CHUNK;
        let hi = (lo + CHUNK).min(n_items);
        (lo..hi).map(|i| per_item(&mut rng, i)).collect::<Vec<T>>()
    })
}

/// Generate the world for one scenario, parallelising the per-phase
/// spec work over the machine's cores. Output depends only on `cfg`.
pub fn generate(cfg: &ScenarioConfig) -> Scenario {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    generate_sharded(cfg, threads)
}

/// Generate the world for one scenario using exactly `threads` spec
/// threads. The network is bit-identical for every `threads` value —
/// the chunk streams, not the thread schedule, carry all the
/// randomness.
pub fn generate_sharded(cfg: &ScenarioConfig, threads: usize) -> Scenario {
    let threads = threads.max(1);
    let seed = cfg.seed;
    let mut net = Network::with_capacity(cfg.today, cfg.expected_users());

    // ---- geography & schools ----------------------------------------
    let home_city = net.add_city(format!("{} City", cfg.name), "NY");
    let other_city = net.add_city("Farvale", "PA");
    let third_city = net.add_city("Westbrook", "OH");
    let school = net.add_school(School {
        id: SchoolId(0),
        name: format!("{} High School", cfg.name).into(),
        city: home_city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: cfg.public_enrollment_estimate,
    });
    let other_school = net.add_school(School {
        id: SchoolId(0),
        name: "Farvale High School".into(),
        city: other_city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 900,
    });
    let college = net.add_school(School {
        id: SchoolId(0),
        name: "State College".into(),
        city: third_city,
        kind: SchoolKind::College,
        public_enrollment_estimate: 20_000,
    });
    let grad_school = net.add_school(School {
        id: SchoolId(0),
        name: "State Graduate School".into(),
        city: third_city,
        kind: SchoolKind::GraduateSchool,
        public_enrollment_estimate: 4_000,
    });

    let classes = cfg.enrolled_classes();
    let grade_size = cfg.school_size / 4;

    // ---- current students --------------------------------------------
    // One slot per real child of the school; the adoption coin inside
    // the slot decides whether they exist on the OSN.
    let mut slots: Vec<(usize, i32)> = Vec::with_capacity(cfg.school_size as usize);
    for (ci, &grad_year) in classes.iter().enumerate() {
        let extra = if ci == 0 { cfg.school_size % 4 } else { 0 };
        for _ in 0..(grade_size + extra) {
            slots.push((ci, grad_year));
        }
    }
    let student_specs = sharded(seed, phase::STUDENTS, threads, slots.len(), |rng, i| {
        let (ci, grad_year) = slots[i];
        if !rng.gen_bool(cfg.adoption_rate) {
            return None; // exists in the real school, but not on the OSN
        }
        let true_birth = student_birth_date(rng, grad_year);
        let registration = sample_registration(rng, &cfg.lying, true_birth, cfg.today);
        let registered_adult = !registration.is_registered_minor(cfg.today);
        let openness = if registered_adult {
            &cfg.lying_student_openness
        } else {
            &cfg.truthful_student_openness
        };
        let (privacy, extras) = sample_account_calibrated(rng, openness);
        let mut profile = base_profile(rng, &extras);
        if extras.lists_school {
            profile.education.push(EducationEntry::high_school(school, grad_year));
        }
        if extras.lists_city {
            profile.current_city = Some(home_city);
        }
        if extras.lists_hometown {
            profile.hometown = Some(home_city);
        }
        if rng.gen_bool(0.06) {
            profile.networks.push(school);
        }
        let address = sample_address(rng);
        let user = User {
            id: UserId(0),
            true_birth_date: true_birth,
            registration,
            profile,
            privacy,
            role: Role::CurrentStudent { school, grad_year },
        };
        Some((user, address, ci))
    });
    let mut students: Vec<UserId> = Vec::new();
    let mut by_class: [Vec<UserId>; 4] = Default::default();
    for (user, address, ci) in student_specs.into_iter().flatten() {
        let id = net.add_user(user);
        net.households_mut().add(address, home_city, vec![id]);
        students.push(id);
        by_class[ci].push(id);
    }

    // ---- former students (churn) --------------------------------------
    let former_specs =
        sharded(seed, phase::FORMER, threads, cfg.former_students as usize, |rng, _| {
            let ci = rng.gen_range(0..4usize);
            let grad_year = classes[ci];
            let true_birth = student_birth_date(rng, grad_year);
            let registration = sample_registration(rng, &cfg.lying, true_birth, cfg.today);
            let registered_adult = !registration.is_registered_minor(cfg.today);
            let openness = if registered_adult {
                &cfg.lying_student_openness
            } else {
                &cfg.truthful_student_openness
            };
            let (privacy, extras) = sample_account_calibrated(rng, openness);
            let mut profile = base_profile(rng, &extras);
            // The stale-profile trap: some transfers still list the target
            // school with their (future) grad year and never update it.
            if rng.gen_bool(0.18) {
                profile.education.push(EducationEntry::high_school(school, grad_year));
            }
            let moved_away = rng.gen_bool(0.6);
            if rng.gen_bool(0.35) {
                // Updated profile: lists the new school (filter rule fodder).
                profile.education.push(EducationEntry::high_school(other_school, grad_year));
            }
            if extras.lists_city {
                profile.current_city = Some(if moved_away { other_city } else { home_city });
            }
            let user = User {
                id: UserId(0),
                true_birth_date: true_birth,
                registration,
                profile,
                privacy,
                role: Role::FormerStudent { school, grad_year },
            };
            (user, grad_year)
        });
    let mut former: Vec<(UserId, i32)> = Vec::new();
    for (user, grad_year) in former_specs {
        let id = net.add_user(user);
        former.push((id, grad_year));
    }

    // ---- alumni cohorts ------------------------------------------------
    let senior_year = classes[3];
    let mut alumni_slots: Vec<(i32, i32)> = Vec::new(); // (grad_year, years back)
    for back in 1..=cfg.alumni_cohorts as i32 {
        let cohort_n = (grade_size as f64 * cfg.alumni_visibility) as u32;
        for _ in 0..cohort_n {
            alumni_slots.push((senior_year - back, back));
        }
    }
    let alumni_specs = sharded(seed, phase::ALUMNI, threads, alumni_slots.len(), |rng, i| {
        let (grad_year, back) = alumni_slots[i];
        let true_birth = student_birth_date(rng, grad_year);
        // Alumni are adults; assume truthful (or by now irrelevant)
        // registration.
        let join = add_years(true_birth, 14 + rng.gen_range(0..4)).max(Date::ymd(2006, 9, 26)); // the OSN's public opening
        let registration = Registration {
            registered_birth_date: true_birth,
            registration_date: join.min(cfg.today),
        };
        let (privacy, extras) = sample_account_calibrated(rng, &cfg.adult_openness);
        let mut profile = base_profile(rng, &extras);
        profile.education.push(EducationEntry::high_school(school, grad_year));
        if rng.gen_bool(0.5) {
            profile.education.push(EducationEntry::college(college, Some(grad_year + 4)));
        }
        if back >= 4 && rng.gen_bool(0.15) {
            profile.education.push(EducationEntry::graduate_school(grad_school));
        }
        if extras.lists_city {
            let city = if rng.gen_bool(0.5) { home_city } else { third_city };
            profile.current_city = Some(city);
        }
        let user = User {
            id: UserId(0),
            true_birth_date: true_birth,
            registration,
            profile,
            privacy,
            role: Role::Alumnus { school, grad_year },
        };
        (user, grad_year)
    });
    let mut alumni: Vec<(UserId, i32)> = Vec::new();
    for (user, grad_year) in alumni_specs {
        let id = net.add_user(user);
        alumni.push((id, grad_year));
    }

    // ---- parents ---------------------------------------------------------
    let parent_specs = sharded(seed, phase::PARENTS, threads, students.len(), |rng, i| {
        let s = students[i];
        if !rng.gen_bool(cfg.parent_prob) {
            return None;
        }
        let child = net.user(s);
        let child_last = child.profile.last_name;
        let child_birth_year = child.true_birth_date.year();
        let gender = sample_gender(rng);
        let (privacy, extras) = sample_account_calibrated(rng, &cfg.adult_openness);
        let mut profile = base_profile(rng, &extras);
        profile.last_name = child_last;
        profile.first_name = sample_first_name(rng, gender).into();
        profile.gender = gender;
        profile.current_city = Some(home_city);
        let birth = Date::ymd(
            child_birth_year - rng.gen_range(24..38),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
        );
        let user = User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2008, 1, 1).add_days(rng.gen_range(0..1200)),
            },
            profile,
            privacy,
            role: Role::Parent { children: vec![s] },
        };
        Some((user, s))
    });
    let mut parent_edges: Vec<(UserId, UserId)> = Vec::new();
    for (user, s) in parent_specs.into_iter().flatten() {
        let id = net.add_user(user);
        if let Some(h) = net.households().of(s).map(|h| h.id) {
            net.households_mut().join(h, id);
        }
        parent_edges.push((id, s));
    }

    // ---- community pool ---------------------------------------------------
    let pool_specs =
        sharded(seed, phase::POOL, threads, cfg.community_pool_size as usize, |rng, _| {
            let (privacy, extras) = sample_account_calibrated(rng, &cfg.adult_openness);
            let mut profile = base_profile(rng, &extras);
            let local = rng.gen_bool(0.55);
            if extras.lists_city {
                profile.current_city = Some(if local {
                    home_city
                } else if rng.gen_bool(0.5) {
                    other_city
                } else {
                    third_city
                });
            }
            let birth = Date::ymd(
                cfg.today.year() - rng.gen_range(14..55),
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
            );
            // Adults without a listed city still live somewhere: their
            // household defaults to the target city.
            let household = rng
                .gen_bool(0.85)
                .then(|| (sample_address(rng), profile.current_city.unwrap_or(home_city)));
            let user = User {
                id: UserId(0),
                true_birth_date: birth,
                registration: Registration {
                    registered_birth_date: birth,
                    registration_date: Date::ymd(2007, 6, 1).add_days(rng.gen_range(0..1500)),
                },
                profile,
                privacy,
                role: if local { Role::OtherResident } else { Role::NonResident },
            };
            (user, household)
        });
    let mut pool: Vec<UserId> = Vec::with_capacity(cfg.community_pool_size as usize);
    for (user, household) in pool_specs {
        let id = net.add_user(user);
        if let Some((address, city)) = household {
            net.households_mut().add(address, city, vec![id]);
        }
        pool.push(id);
    }

    // ---- friendships -------------------------------------------------------

    // Per-student sociability: real students range from social hubs to
    // near-loners, which is what makes the paper's coverage keep
    // climbing between t = 300 and t = 500 (weakly-connected students
    // accumulate core links slowly and rank below some false positives).
    // Openness correlates with sociability: the lying/open students who
    // become the attacker's core users are also the best-connected ones
    // (which is why 18 cores suffice to cover most of HS1 in the paper).
    let soc_values = sharded(seed, phase::SOCIABILITY, threads, students.len(), |rng, i| {
        let open = net.user(students[i]).privacy.friend_list.visible_to_stranger();
        let mu = if open { 0.45 } else { 0.0 };
        (normal(rng, mu, 0.5)).exp().clamp(0.15, 3.0)
    });
    // Students are the first users committed, so their ids are dense
    // from zero and the table is index-addressed by `UserId::index` —
    // no hashing inside the hottest edge-generation loops.
    debug_assert!(students.iter().enumerate().all(|(k, s)| s.index() == k));
    let sociability: Vec<f64> = soc_values;

    // Student <-> student, Chung-Lu-style: edge probability scales with
    // both endpoints' sociability, with a base rate by grade distance.
    // One work item per row: a student of the pair's first class,
    // deciding coins against every partner in the second.
    let f = &cfg.friendship;
    let mut bases = [[0.0f64; 4]; 4];
    let mut ss_rows: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, row) in bases.iter_mut().enumerate() {
        for (cj, slot) in row.iter_mut().enumerate().skip(ci) {
            let base = if ci == cj {
                f.within_grade_p
            } else {
                f.cross_grade_p / (1 << (cj - ci - 1)) as f64
            };
            *slot = base;
            if base <= 0.0 {
                continue;
            }
            for i in 0..by_class[ci].len() {
                ss_rows.push((ci, cj, i));
            }
        }
    }
    let ss_edges = sharded(seed, phase::EDGES_CLASSMATES, threads, ss_rows.len(), |rng, r| {
        let (ci, cj, i) = ss_rows[r];
        let u = by_class[ci][i];
        let fu = sociability[u.index()];
        let base = bases[ci][cj];
        let j0 = if ci == cj { i + 1 } else { 0 };
        let mut out: Vec<(UserId, UserId)> = Vec::new();
        for &v in &by_class[cj][j0..] {
            let p = (base * fu * sociability[v.index()]).min(0.97);
            if rng.gen_bool(p) {
                out.push((u, v));
            }
        }
        out
    });

    // Student <-> community pool: the paper's Table 5 shows open
    // (public-friend-list) users have substantially more friends; the
    // sociability factor carries over to off-school friendships too.
    let sp_edges = sharded(seed, phase::EDGES_COMMUNITY, threads, students.len(), |rng, i| {
        let s = students[i];
        let open = net.user(s).privacy.friend_list.visible_to_stranger();
        let boost = if open { f.open_degree_boost } else { 1.0 };
        let mean = f.nonschool_friends_mean * boost * sociability[s.index()].sqrt();
        let k = normal(rng, mean, mean * 0.25).max(0.0) as usize;
        (0..k).map(|_| (s, pool[rng.gen_range(0..pool.len())])).collect::<Vec<_>>()
    });

    // Former students keep some in-school ties, mostly in their class.
    let former_edges = sharded(seed, phase::EDGES_FORMER, threads, former.len(), |rng, i| {
        let (fs, grad_year) = former[i];
        let ci = classes.iter().position(|&c| c == grad_year).unwrap_or(3);
        let k =
            normal(rng, f.former_to_student_mean, f.former_to_student_mean * 0.3).max(0.0) as usize;
        let mut out: Vec<(UserId, UserId)> = Vec::new();
        for _ in 0..k {
            let same_class = rng.gen_bool(0.8);
            let class =
                if same_class { &by_class[ci] } else { &by_class[rng.gen_range(0..4usize)] };
            if class.is_empty() {
                continue;
            }
            out.push((fs, class[rng.gen_range(0..class.len())]));
        }
        // ...and some community friends.
        for _ in 0..geometric_with_mean(rng, f.nonschool_friends_mean * 0.5) as usize {
            out.push((fs, pool[rng.gen_range(0..pool.len())]));
        }
        out
    });

    // Alumni <-> current students, decaying with years-since-overlap.
    let alumni_edges = sharded(seed, phase::EDGES_ALUMNI, threads, alumni.len(), |rng, i| {
        let (a, grad_year) = alumni[i];
        let mut out: Vec<(UserId, UserId)> = Vec::new();
        for (ci, &class_year) in classes.iter().enumerate() {
            let overlap = (grad_year - class_year + 4).max(0) as f64 / 3.0;
            let mean = if overlap > 0.0 {
                f.alumni_to_student_mean * overlap
            } else {
                // Small residual: siblings, neighbourhood.
                f.alumni_to_student_mean * f.alumni_decay * 0.1
            };
            let k = geometric_with_mean(rng, mean) as usize;
            let class = &by_class[ci];
            if class.is_empty() {
                continue;
            }
            for _ in 0..k {
                out.push((a, class[rng.gen_range(0..class.len())]));
            }
        }
        // Alumni also have plenty of non-school friends.
        for _ in 0..geometric_with_mean(rng, f.nonschool_friends_mean * 0.7) as usize {
            out.push((a, pool[rng.gen_range(0..pool.len())]));
        }
        out
    });

    // Commit order across edge groups is irrelevant: bulk insertion
    // sorts and dedups every adjacency list it touches.
    let mut edges = parent_edges;
    edges.extend(ss_edges.into_iter().flatten());
    edges.extend(sp_edges.into_iter().flatten());
    edges.extend(former_edges.into_iter().flatten());
    edges.extend(alumni_edges.into_iter().flatten());
    net.add_friendships_bulk(edges);

    // ---- interactions (wall posts between friends) -----------------------
    // Classmates interact far more than incidental contacts; the wall a
    // stranger can sometimes see is the attacker's window onto this.
    let all_users: Vec<UserId> = net.user_ids().collect();
    {
        let student_set: HashSet<UserId> = students.iter().copied().collect();
        let pair_rows = sharded(seed, phase::INTERACTIONS, threads, all_users.len(), |rng, i| {
            let u = all_users[i];
            let mut out: Vec<(UserId, UserId, u32)> = Vec::new();
            for &v in net.friends(u) {
                if v <= u {
                    continue; // one direction per pair
                }
                let both_students = student_set.contains(&u) && student_set.contains(&v);
                let mean = if both_students { 5.0 } else { 0.5 };
                let n = geometric_with_mean(rng, mean);
                if n > 0 {
                    out.push((u, v, n));
                }
            }
            out
        });
        net.interactions_mut().bulk_insert(pair_rows.into_iter().flatten());
    }

    // ---- Google+-style circles (paper Appendix A) -----------------------
    // Start from reciprocal circling of every friendship, drop a fraction
    // of the reciprocal directions (not everyone circles back), and add
    // one-way follows from students to older users they know of.
    {
        let keep_rows = sharded(seed, phase::CIRCLES_KEEP, threads, all_users.len(), |rng, i| {
            let u = all_users[i];
            let mut out: Vec<(UserId, UserId)> = Vec::new();
            for &v in net.friends(u) {
                // Keep the u->v direction with high probability.
                if rng.gen_bool(0.92) {
                    out.push((u, v));
                }
            }
            out
        });
        let follow_rows =
            sharded(seed, phase::CIRCLES_FOLLOW, threads, students.len(), |rng, i| {
                let s = students[i];
                let follows = geometric_with_mean(rng, 6.0) as usize;
                let mut out: Vec<(UserId, UserId)> = Vec::with_capacity(follows);
                for _ in 0..follows {
                    let target = if rng.gen_bool(0.5) && !alumni.is_empty() {
                        alumni[rng.gen_range(0..alumni.len())].0
                    } else {
                        pool[rng.gen_range(0..pool.len())]
                    };
                    out.push((s, target));
                }
                out
            });
        let mut circles = hsp_graph::Circles::with_capacity(net.user_count());
        for (u, v) in keep_rows.into_iter().flatten().chain(follow_rows.into_iter().flatten()) {
            circles.add(u, v);
        }
        *net.circles_mut() = circles;
    }

    // Freeze for attack-time reads: CSR adjacency, SoA columns and
    // school-lister indexes. Pure layout change — the fingerprint is
    // pinned identical across sealing by the graph crate's tests.
    net.seal();

    Scenario { config: cfg.clone(), school, other_school, home_city, other_city, network: net }
}

/// Birth date for the class of `grad_year`: US cutoff, born between
/// September of `grad_year - 19` and August of `grad_year - 18`.
fn student_birth_date(rng: &mut impl Rng, grad_year: i32) -> Date {
    let offset_months = rng.gen_range(0..12); // 0 = September
    let month0 = 9 + offset_months;
    let (year, month) =
        if month0 <= 12 { (grad_year - 19, month0) } else { (grad_year - 18, month0 - 12) };
    Date::ymd(year, month as u8, rng.gen_range(1..=28))
}

fn base_profile(rng: &mut impl Rng, extras: &ProfileExtras) -> ProfileContent {
    let gender = sample_gender(rng);
    let mut profile =
        ProfileContent::bare(sample_first_name(rng, gender), sample_last_name(rng), gender);
    profile.photos_shared = extras.photos_shared;
    profile.wall_posts = extras.wall_posts;
    profile.relationship = extras.relationship;
    profile.interested_in = extras.interested_in;
    if extras.has_contact_info {
        profile.contact.email = Some(format!(
            "{}.{}@example.net",
            profile.first_name.as_str().to_ascii_lowercase(),
            profile.last_name.as_str().to_ascii_lowercase()
        ));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    #[test]
    fn tiny_scenario_generates_consistently() {
        let cfg = ScenarioConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.network.user_count(), b.network.user_count());
        assert_eq!(a.roster().len(), b.roster().len());
        // Determinism down to the names.
        let ua = a.network.user(UserId(0));
        let ub = b.network.user(UserId(0));
        assert_eq!(ua.profile.full_name(), ub.profile.full_name());
    }

    #[test]
    fn thread_count_never_changes_the_network() {
        let cfg = ScenarioConfig::tiny();
        let one = generate_sharded(&cfg, 1);
        let many = generate_sharded(&cfg, 8);
        assert_eq!(one.network.fingerprint(), many.network.fingerprint());
        // And `generate` (auto thread count) lands on the same world.
        assert_eq!(generate(&cfg).network.fingerprint(), one.network.fingerprint());
    }

    #[test]
    fn roster_size_tracks_adoption() {
        let cfg = ScenarioConfig::tiny();
        let s = generate(&cfg);
        let roster = s.roster();
        let expected = cfg.school_size as f64 * cfg.adoption_rate;
        assert!(
            (roster.len() as f64 - expected).abs() < expected * 0.3,
            "roster {} vs expected {expected}",
            roster.len()
        );
        // Four classes all populated.
        for class in s.config.enrolled_classes() {
            assert!(!s.network.roster_for_class(s.school, class).is_empty());
        }
    }

    #[test]
    fn students_have_school_friends() {
        let s = generate(&ScenarioConfig::tiny());
        let roster = s.roster();
        let with_friends = roster
            .iter()
            .filter(|&&u| s.network.friends(u).iter().any(|f| roster.binary_search(f).is_ok()))
            .count();
        assert!(with_friends as f64 > roster.len() as f64 * 0.9);
    }

    #[test]
    fn some_students_are_minors_registered_as_adults() {
        let s = generate(&ScenarioConfig::tiny());
        let lying = s.lying_minor_students();
        let roster = s.roster();
        let frac = lying.len() as f64 / roster.len() as f64;
        assert!(
            (0.15..0.70).contains(&frac),
            "lying fraction {frac} ({} of {})",
            lying.len(),
            roster.len()
        );
    }

    #[test]
    fn coppaless_world_has_almost_no_lying_minors() {
        let s = generate(&ScenarioConfig::tiny().without_coppa());
        let lying = s.lying_minor_students();
        let roster = s.roster();
        assert!(
            lying.len() as f64 <= roster.len() as f64 * 0.08,
            "{} lying of {}",
            lying.len(),
            roster.len()
        );
    }

    #[test]
    fn alumni_list_past_grad_years() {
        let s = generate(&ScenarioConfig::tiny());
        let senior = s.config.enrolled_classes()[3];
        let mut alumni_seen = 0;
        for u in s.network.users() {
            if let Role::Alumnus { grad_year, .. } = u.role {
                assert!(grad_year < senior);
                alumni_seen += 1;
            }
        }
        assert!(alumni_seen > 0);
    }
}
