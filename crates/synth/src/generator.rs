//! Builds a complete synthetic world from a [`ScenarioConfig`].
//!
//! Population groups (see DESIGN.md §2 "hsp-synth"):
//!
//! - **Current students** of the target school, split over four classes,
//!   with the age-lying model deciding their registered birth dates and
//!   Table 5-calibrated openness for those registered as adults.
//! - **Former students** (churn): transferred out but often still
//!   listing the school with a current/future grad year — the paper's
//!   main false-positive source.
//! - **Alumni** of recent cohorts: adults who publicly list the school;
//!   they dominate the search portal's results, exactly as in §3.1.
//! - **Parents** friended to their children.
//! - A **community pool** of unrelated adults providing the bulk of the
//!   students' non-school friends (and hence of the candidate set).

use crate::config::ScenarioConfig;
use crate::lying::{add_years, geometric_with_mean, normal, sample_registration};
use crate::names::{sample_address, sample_first_name, sample_gender, sample_last_name};
use crate::privacy_assign::{sample_account_calibrated, ProfileExtras};
use crate::scenario::Scenario;
use hsp_graph::{
    Date, EducationEntry, Network, ProfileContent, Registration, Role, School, SchoolId,
    SchoolKind, User, UserId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate the world for one scenario.
pub fn generate(cfg: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Network::new(cfg.today);

    // ---- geography & schools ----------------------------------------
    let home_city = net.add_city(format!("{} City", cfg.name), "NY");
    let other_city = net.add_city("Farvale", "PA");
    let third_city = net.add_city("Westbrook", "OH");
    let school = net.add_school(School {
        id: SchoolId(0),
        name: format!("{} High School", cfg.name),
        city: home_city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: cfg.public_enrollment_estimate,
    });
    let other_school = net.add_school(School {
        id: SchoolId(0),
        name: "Farvale High School".into(),
        city: other_city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 900,
    });
    let college = net.add_school(School {
        id: SchoolId(0),
        name: "State College".into(),
        city: third_city,
        kind: SchoolKind::College,
        public_enrollment_estimate: 20_000,
    });
    let grad_school = net.add_school(School {
        id: SchoolId(0),
        name: "State Graduate School".into(),
        city: third_city,
        kind: SchoolKind::GraduateSchool,
        public_enrollment_estimate: 4_000,
    });

    let classes = cfg.enrolled_classes();
    let grade_size = cfg.school_size / 4;

    let mut students: Vec<UserId> = Vec::new();
    let mut by_class: [Vec<UserId>; 4] = Default::default();

    // ---- current students --------------------------------------------
    for (ci, &grad_year) in classes.iter().enumerate() {
        let extra = if ci == 0 { cfg.school_size % 4 } else { 0 };
        for _ in 0..(grade_size + extra) {
            if !rng.gen_bool(cfg.adoption_rate) {
                continue; // exists in the real school, but not on the OSN
            }
            let true_birth = student_birth_date(&mut rng, grad_year);
            let registration = sample_registration(&mut rng, &cfg.lying, true_birth, cfg.today);
            let registered_adult = !registration.is_registered_minor(cfg.today);
            let openness = if registered_adult {
                &cfg.lying_student_openness
            } else {
                &cfg.truthful_student_openness
            };
            let (privacy, extras) = sample_account_calibrated(&mut rng, openness);
            let mut profile = base_profile(&mut rng, &extras);
            if extras.lists_school {
                profile.education.push(EducationEntry::high_school(school, grad_year));
            }
            if extras.lists_city {
                profile.current_city = Some(home_city);
            }
            if extras.lists_hometown {
                profile.hometown = Some(home_city);
            }
            if rng.gen_bool(0.06) {
                profile.networks.push(school);
            }
            let id = net.add_user(User {
                id: UserId(0),
                true_birth_date: true_birth,
                registration,
                profile,
                privacy,
                role: Role::CurrentStudent { school, grad_year },
            });
            net.households_mut().add(sample_address(&mut rng), home_city, vec![id]);
            students.push(id);
            by_class[ci].push(id);
        }
    }

    // ---- former students (churn) --------------------------------------
    let mut former: Vec<UserId> = Vec::new();
    for _ in 0..cfg.former_students {
        let ci = rng.gen_range(0..4usize);
        let grad_year = classes[ci];
        let true_birth = student_birth_date(&mut rng, grad_year);
        let registration = sample_registration(&mut rng, &cfg.lying, true_birth, cfg.today);
        let registered_adult = !registration.is_registered_minor(cfg.today);
        let openness = if registered_adult {
            &cfg.lying_student_openness
        } else {
            &cfg.truthful_student_openness
        };
        let (privacy, extras) = sample_account_calibrated(&mut rng, openness);
        let mut profile = base_profile(&mut rng, &extras);
        // The stale-profile trap: some transfers still list the target
        // school with their (future) grad year and never update it.
        if rng.gen_bool(0.18) {
            profile.education.push(EducationEntry::high_school(school, grad_year));
        }
        let moved_away = rng.gen_bool(0.6);
        if rng.gen_bool(0.35) {
            // Updated profile: lists the new school (filter rule fodder).
            profile.education.push(EducationEntry::high_school(other_school, grad_year));
        }
        if extras.lists_city {
            profile.current_city = Some(if moved_away { other_city } else { home_city });
        }
        let id = net.add_user(User {
            id: UserId(0),
            true_birth_date: true_birth,
            registration,
            profile,
            privacy,
            role: Role::FormerStudent { school, grad_year },
        });
        former.push(id);
    }

    // ---- alumni cohorts ------------------------------------------------
    let senior_year = classes[3];
    let mut alumni: Vec<(UserId, i32)> = Vec::new();
    for back in 1..=cfg.alumni_cohorts as i32 {
        let grad_year = senior_year - back;
        let cohort_n = (grade_size as f64 * cfg.alumni_visibility) as u32;
        for _ in 0..cohort_n {
            let true_birth = student_birth_date(&mut rng, grad_year);
            // Alumni are adults; assume truthful (or by now irrelevant)
            // registration.
            let join = add_years(true_birth, 14 + rng.gen_range(0..4)).max(Date::ymd(2006, 9, 26)); // the OSN's public opening
            let registration = Registration {
                registered_birth_date: true_birth,
                registration_date: join.min(cfg.today),
            };
            let (privacy, extras) = sample_account_calibrated(&mut rng, &cfg.adult_openness);
            let mut profile = base_profile(&mut rng, &extras);
            profile.education.push(EducationEntry::high_school(school, grad_year));
            if rng.gen_bool(0.5) {
                profile.education.push(EducationEntry::college(college, Some(grad_year + 4)));
            }
            if back >= 4 && rng.gen_bool(0.15) {
                profile.education.push(EducationEntry::graduate_school(grad_school));
            }
            if extras.lists_city {
                let city = if rng.gen_bool(0.5) { home_city } else { third_city };
                profile.current_city = Some(city);
            }
            let id = net.add_user(User {
                id: UserId(0),
                true_birth_date: true_birth,
                registration,
                profile,
                privacy,
                role: Role::Alumnus { school, grad_year },
            });
            alumni.push((id, grad_year));
        }
    }

    // ---- parents ---------------------------------------------------------
    let mut parent_edges: Vec<(UserId, UserId)> = Vec::new();
    let mut parents: Vec<UserId> = Vec::new();
    for &s in &students {
        if !rng.gen_bool(cfg.parent_prob) {
            continue;
        }
        let child_last = net.user(s).profile.last_name.clone();
        let gender = sample_gender(&mut rng);
        let (privacy, extras) = sample_account_calibrated(&mut rng, &cfg.adult_openness);
        let mut profile = base_profile(&mut rng, &extras);
        profile.last_name = child_last;
        profile.first_name = sample_first_name(&mut rng, gender).to_string();
        profile.gender = gender;
        profile.current_city = Some(home_city);
        let birth = Date::ymd(
            net.user(s).true_birth_date.year() - rng.gen_range(24..38),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
        );
        let id = net.add_user(User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2008, 1, 1).add_days(rng.gen_range(0..1200)),
            },
            profile,
            privacy,
            role: Role::Parent { children: vec![s] },
        });
        if let Some(h) = net.households().of(s).map(|h| h.id) {
            net.households_mut().join(h, id);
        }
        parents.push(id);
        parent_edges.push((id, s));
    }

    // ---- community pool ---------------------------------------------------
    let mut pool: Vec<UserId> = Vec::with_capacity(cfg.community_pool_size as usize);
    for _ in 0..cfg.community_pool_size {
        let (privacy, extras) = sample_account_calibrated(&mut rng, &cfg.adult_openness);
        let mut profile = base_profile(&mut rng, &extras);
        let local = rng.gen_bool(0.55);
        if extras.lists_city {
            profile.current_city = Some(if local {
                home_city
            } else if rng.gen_bool(0.5) {
                other_city
            } else {
                third_city
            });
        }
        let birth = Date::ymd(
            cfg.today.year() - rng.gen_range(14..55),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
        );
        let id = net.add_user(User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2007, 6, 1).add_days(rng.gen_range(0..1500)),
            },
            profile,
            privacy,
            role: if local { Role::OtherResident } else { Role::NonResident },
        });
        if rng.gen_bool(0.85) {
            let city = profile_city_or(&net, id, home_city);
            net.households_mut().add(sample_address(&mut rng), city, vec![id]);
        }
        pool.push(id);
    }

    // ---- friendships -------------------------------------------------------
    let mut edges: Vec<(UserId, UserId)> = parent_edges;

    // Per-student sociability: real students range from social hubs to
    // near-loners, which is what makes the paper's coverage keep
    // climbing between t = 300 and t = 500 (weakly-connected students
    // accumulate core links slowly and rank below some false positives).
    // Openness correlates with sociability: the lying/open students who
    // become the attacker's core users are also the best-connected ones
    // (which is why 18 cores suffice to cover most of HS1 in the paper).
    let sociability: std::collections::HashMap<UserId, f64> = students
        .iter()
        .map(|&s| {
            let open = net.user(s).privacy.friend_list.visible_to_stranger();
            let mu = if open { 0.45 } else { 0.0 };
            let f = (normal(&mut rng, mu, 0.5)).exp().clamp(0.15, 3.0);
            (s, f)
        })
        .collect();

    // Student <-> student, Chung-Lu-style: edge probability scales with
    // both endpoints' sociability, with a base rate by grade distance.
    let f = &cfg.friendship;
    for ci in 0..4 {
        for cj in ci..4 {
            let base = if ci == cj {
                f.within_grade_p
            } else {
                f.cross_grade_p / (1 << (cj - ci - 1)) as f64
            };
            if base <= 0.0 {
                continue;
            }
            let (a, b) = (&by_class[ci], &by_class[cj]);
            for (i, &u) in a.iter().enumerate() {
                let fu = sociability[&u];
                let j0 = if ci == cj { i + 1 } else { 0 };
                for &v in &b[j0..] {
                    let p = (base * fu * sociability[&v]).min(0.97);
                    if rng.gen_bool(p) {
                        edges.push((u, v));
                    }
                }
            }
        }
    }

    // Student <-> community pool: the paper's Table 5 shows open
    // (public-friend-list) users have substantially more friends; the
    // sociability factor carries over to off-school friendships too.
    for &s in &students {
        let open = net.user(s).privacy.friend_list.visible_to_stranger();
        let boost = if open { f.open_degree_boost } else { 1.0 };
        let mean = f.nonschool_friends_mean * boost * sociability[&s].sqrt();
        let k = normal(&mut rng, mean, mean * 0.25).max(0.0) as usize;
        for _ in 0..k {
            let p = pool[rng.gen_range(0..pool.len())];
            edges.push((s, p));
        }
    }

    // Former students keep some in-school ties, mostly in their class.
    for &fs in &former {
        let grad_year = match net.user(fs).role {
            Role::FormerStudent { grad_year, .. } => grad_year,
            _ => unreachable!(),
        };
        let ci = classes.iter().position(|&c| c == grad_year).unwrap_or(3);
        let k = normal(&mut rng, f.former_to_student_mean, f.former_to_student_mean * 0.3).max(0.0)
            as usize;
        for _ in 0..k {
            let same_class = rng.gen_bool(0.8);
            let class =
                if same_class { &by_class[ci] } else { &by_class[rng.gen_range(0..4usize)] };
            if class.is_empty() {
                continue;
            }
            edges.push((fs, class[rng.gen_range(0..class.len())]));
        }
        // ...and some community friends.
        for _ in 0..geometric_with_mean(&mut rng, f.nonschool_friends_mean * 0.5) as usize {
            edges.push((fs, pool[rng.gen_range(0..pool.len())]));
        }
    }

    // Alumni <-> current students, decaying with years-since-overlap.
    for &(a, grad_year) in &alumni {
        for (ci, &class_year) in classes.iter().enumerate() {
            let overlap = (grad_year - class_year + 4).max(0) as f64 / 3.0;
            let mean = if overlap > 0.0 {
                f.alumni_to_student_mean * overlap
            } else {
                // Small residual: siblings, neighbourhood.
                f.alumni_to_student_mean * f.alumni_decay * 0.1
            };
            let k = geometric_with_mean(&mut rng, mean) as usize;
            let class = &by_class[ci];
            if class.is_empty() {
                continue;
            }
            for _ in 0..k {
                edges.push((a, class[rng.gen_range(0..class.len())]));
            }
        }
        // Alumni also have plenty of non-school friends.
        for _ in 0..geometric_with_mean(&mut rng, f.nonschool_friends_mean * 0.7) as usize {
            edges.push((a, pool[rng.gen_range(0..pool.len())]));
        }
    }

    net.add_friendships_bulk(edges);

    // ---- interactions (wall posts between friends) -----------------------
    // Classmates interact far more than incidental contacts; the wall a
    // stranger can sometimes see is the attacker's window onto this.
    {
        let student_set: std::collections::HashSet<UserId> = students.iter().copied().collect();
        let mut pairs: Vec<(UserId, UserId, u32)> = Vec::new();
        for u in net.user_ids() {
            for &v in net.friends(u) {
                if v <= u {
                    continue; // one direction per pair
                }
                let both_students = student_set.contains(&u) && student_set.contains(&v);
                let mean = if both_students { 5.0 } else { 0.5 };
                let n = geometric_with_mean(&mut rng, mean);
                if n > 0 {
                    pairs.push((u, v, n));
                }
            }
        }
        net.interactions_mut().bulk_insert(pairs);
    }

    // ---- Google+-style circles (paper Appendix A) -----------------------
    // Start from reciprocal circling of every friendship, drop a fraction
    // of the reciprocal directions (not everyone circles back), and add
    // one-way follows from students to older users they know of.
    {
        let mut circles = hsp_graph::Circles::with_capacity(net.user_count());
        for u in net.user_ids() {
            for &v in net.friends(u) {
                // Keep the u->v direction with high probability.
                if rng.gen_bool(0.92) {
                    circles.add(u, v);
                }
            }
        }
        for &s in &students {
            let follows = geometric_with_mean(&mut rng, 6.0) as usize;
            for _ in 0..follows {
                let target = if rng.gen_bool(0.5) && !alumni.is_empty() {
                    alumni[rng.gen_range(0..alumni.len())].0
                } else {
                    pool[rng.gen_range(0..pool.len())]
                };
                circles.add(s, target);
            }
        }
        *net.circles_mut() = circles;
    }

    Scenario { config: cfg.clone(), school, other_school, home_city, other_city, network: net }
}

/// The city a user lists, falling back to `default` (community adults
/// without a listed city still live somewhere).
fn profile_city_or(net: &Network, u: UserId, default: hsp_graph::CityId) -> hsp_graph::CityId {
    net.user(u).profile.current_city.unwrap_or(default)
}

/// Birth date for the class of `grad_year`: US cutoff, born between
/// September of `grad_year - 19` and August of `grad_year - 18`.
fn student_birth_date(rng: &mut impl Rng, grad_year: i32) -> Date {
    let offset_months = rng.gen_range(0..12); // 0 = September
    let month0 = 9 + offset_months;
    let (year, month) =
        if month0 <= 12 { (grad_year - 19, month0) } else { (grad_year - 18, month0 - 12) };
    Date::ymd(year, month as u8, rng.gen_range(1..=28))
}

fn base_profile(rng: &mut impl Rng, extras: &ProfileExtras) -> ProfileContent {
    let gender = sample_gender(rng);
    let mut profile =
        ProfileContent::bare(sample_first_name(rng, gender), sample_last_name(rng), gender);
    profile.photos_shared = extras.photos_shared;
    profile.wall_posts = extras.wall_posts;
    profile.relationship = extras.relationship;
    profile.interested_in = extras.interested_in;
    if extras.has_contact_info {
        profile.contact.email = Some(format!(
            "{}.{}@example.net",
            profile.first_name.to_ascii_lowercase(),
            profile.last_name.to_ascii_lowercase()
        ));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    #[test]
    fn tiny_scenario_generates_consistently() {
        let cfg = ScenarioConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.network.user_count(), b.network.user_count());
        assert_eq!(a.roster().len(), b.roster().len());
        // Determinism down to the names.
        let ua = a.network.user(UserId(0));
        let ub = b.network.user(UserId(0));
        assert_eq!(ua.profile.full_name(), ub.profile.full_name());
    }

    #[test]
    fn roster_size_tracks_adoption() {
        let cfg = ScenarioConfig::tiny();
        let s = generate(&cfg);
        let roster = s.roster();
        let expected = cfg.school_size as f64 * cfg.adoption_rate;
        assert!(
            (roster.len() as f64 - expected).abs() < expected * 0.3,
            "roster {} vs expected {expected}",
            roster.len()
        );
        // Four classes all populated.
        for class in s.config.enrolled_classes() {
            assert!(!s.network.roster_for_class(s.school, class).is_empty());
        }
    }

    #[test]
    fn students_have_school_friends() {
        let s = generate(&ScenarioConfig::tiny());
        let roster = s.roster();
        let with_friends = roster
            .iter()
            .filter(|&&u| s.network.friends(u).iter().any(|f| roster.binary_search(f).is_ok()))
            .count();
        assert!(with_friends as f64 > roster.len() as f64 * 0.9);
    }

    #[test]
    fn some_students_are_minors_registered_as_adults() {
        let s = generate(&ScenarioConfig::tiny());
        let lying = s.lying_minor_students();
        let roster = s.roster();
        let frac = lying.len() as f64 / roster.len() as f64;
        assert!(
            (0.15..0.70).contains(&frac),
            "lying fraction {frac} ({} of {})",
            lying.len(),
            roster.len()
        );
    }

    #[test]
    fn coppaless_world_has_almost_no_lying_minors() {
        let s = generate(&ScenarioConfig::tiny().without_coppa());
        let lying = s.lying_minor_students();
        let roster = s.roster();
        assert!(
            lying.len() as f64 <= roster.len() as f64 * 0.08,
            "{} lying of {}",
            lying.len(),
            roster.len()
        );
    }

    #[test]
    fn alumni_list_past_grad_years() {
        let s = generate(&ScenarioConfig::tiny());
        let senior = s.config.enrolled_classes()[3];
        let mut alumni_seen = 0;
        for u in s.network.users() {
            if let Role::Alumnus { grad_year, .. } = u.role {
                assert!(grad_year < senior);
                alumni_seen += 1;
            }
        }
        assert!(alumni_seen > 0);
    }
}
