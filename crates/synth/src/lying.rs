//! The age-lying model: how a child's registered birth date diverges
//! from their true one (paper §1, observations 1–2).
//!
//! A student joined the OSN at some age. If they were under 13, the
//! COPPA-driven ban forced a choice: wait, or lie. Liars either claimed
//! to be just over 13 (possibly padding a year or two) or claimed to be
//! 18+ outright. Years later, the accumulated shift makes many of them
//! *registered adults while still minors* — the pivot of the attack.

use crate::config::LyingModel;
use hsp_graph::{Date, Registration};
use rand::Rng;

/// Sample a registration for a person with the given true birth date.
///
/// Returns the registration (registered birth date + join date). The
/// join date never precedes the OSN's opening to the public (modelled
/// as 2006-09-26) and never lands after `today`.
pub fn sample_registration(
    rng: &mut impl Rng,
    model: &LyingModel,
    true_birth: Date,
    today: Date,
) -> Registration {
    let osn_opening = Date::ymd(2006, 9, 26);

    // Desired join age ~ N(mean, std), clamped to a plausible range.
    let desired_join_age = normal(rng, model.join_age_mean, model.join_age_std).clamp(8.0, 17.0);
    let mut join_date = add_years_f(true_birth, desired_join_age);
    if join_date < osn_opening {
        join_date = osn_opening.add_days(rng.gen_range(0..120));
    }

    let mut age_at_join = Date::age_on(true_birth, join_date);
    let mut registered_birth = true_birth;

    if age_at_join < 13 {
        if rng.gen_bool(model.p_lie_when_underage) {
            // Lie. Either claim 18+ or claim just-13 (+ padding).
            let claimed_age = if rng.gen_bool(model.p_lie_to_adult) {
                18 + rng.gen_range(0..=2)
            } else {
                13 + rng.gen_range(0..=model.extra_years_max)
            };
            let shift_years = claimed_age - age_at_join;
            registered_birth = add_years(true_birth, -shift_years);
        } else {
            // Waited until their real 13th birthday (or the OSN's
            // opening, whichever is later).
            join_date =
                add_years(true_birth, 13).add_days(rng.gen_range(0..180) as i64).max(osn_opening);
            age_at_join = 13;
            let _ = age_at_join;
        }
    }

    // Nobody joins in the future.
    if join_date > today {
        join_date = today.add_days(-(rng.gen_range(1..400) as i64));
        // If that would put joining before 13 for a truthful child,
        // accept it: a small residual of underage truthful accounts is
        // realistic noise.
    }

    Registration { registered_birth_date: registered_birth, registration_date: join_date }
}

/// Shift a date by whole years (clamping Feb 29 to Feb 28).
pub fn add_years(date: Date, years: i32) -> Date {
    let y = date.year() + years;
    let (m, mut d) = (date.month(), date.day());
    if m == 2 && d == 29 && !hsp_graph::date::is_leap_year(y) {
        d = 28;
    }
    Date::ymd(y, m, d)
}

fn add_years_f(date: Date, years: f64) -> Date {
    date.add_days((years * 365.25) as i64)
}

/// Box–Muller standard normal scaled to (mean, std).
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

/// Sample from a geometric-like distribution with the given mean
/// (used for photo counts, wall posts, friend-count jitter).
pub fn geometric_with_mean(rng: &mut impl Rng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    // Exponential with the target mean, rounded down.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean * u.ln()) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn today() -> Date {
        Date::ymd(2012, 3, 15)
    }

    #[test]
    fn truthful_model_produces_no_lies() {
        let model = LyingModel { p_lie_when_underage: 0.0, ..LyingModel::default() };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let birth = Date::ymd(1997, 6, 1);
            let reg = sample_registration(&mut rng, &model, birth, today());
            assert_eq!(reg.registered_birth_date, birth);
            // Never joined under 13 *with a truthful date* before their
            // 13th birthday unless clamped by today (birth 1997 -> 13 in
            // 2010, today 2012: fine).
            assert!(reg.registration_date <= today());
        }
    }

    #[test]
    fn always_lie_model_produces_registered_age_shifts() {
        let model = LyingModel {
            join_age_mean: 10.0,
            join_age_std: 0.5,
            p_lie_when_underage: 1.0,
            p_lie_to_adult: 1.0,
            extra_years_max: 0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let birth = Date::ymd(1997, 6, 1); // truly 14 in March 2012
        let mut adults = 0;
        for _ in 0..100 {
            let reg = sample_registration(&mut rng, &model, birth, today());
            if !reg.is_registered_minor(today()) {
                adults += 1;
            }
        }
        // Everyone claimed 18+ at join, so everyone is a registered adult.
        assert_eq!(adults, 100);
    }

    #[test]
    fn claim_13_liars_age_into_registered_adults() {
        // Join at 10 claiming 13 => shift 3 years; truly 17 => registered 20.
        let model = LyingModel {
            join_age_mean: 10.0,
            join_age_std: 0.1,
            p_lie_when_underage: 1.0,
            p_lie_to_adult: 0.0,
            extra_years_max: 0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let birth = Date::ymd(1994, 6, 1); // truly 17 in March 2012
        let reg = sample_registration(&mut rng, &model, birth, today());
        assert!(!reg.is_registered_minor(today()));
        // A younger child gets the same kind of shift: the registered
        // birth date moves back by exactly (13 - join age) years, i.e.
        // 2–5 years for joins at ages 8–11.
        let birth = Date::ymd(1997, 6, 1); // truly 14
        let reg = sample_registration(&mut rng, &model, birth, today());
        let shift = birth.year() - reg.registered_birth_date.year();
        assert!((2..=5).contains(&shift), "shift {shift}");
        // Registered age is true age + shift; minor status follows.
        assert_eq!(reg.is_registered_minor(today()), Date::age_on(birth, today()) + shift < 18);
    }

    #[test]
    fn registration_never_after_today() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = LyingModel::default();
        for year in [1994, 1996, 1998, 2000] {
            for _ in 0..50 {
                let reg = sample_registration(&mut rng, &model, Date::ymd(year, 7, 4), today());
                assert!(reg.registration_date <= today());
            }
        }
    }

    #[test]
    fn default_model_yields_plausible_lying_fraction() {
        // Across a synthetic class of 14–17-year-olds, the default model
        // should make roughly 25–55 % of them registered adults —
        // bracketing the paper's 34 % (HS1) and ~50 % (HS2/HS3).
        let mut rng = StdRng::seed_from_u64(7);
        let model = LyingModel::default();
        let mut lying_adults = 0;
        let n = 2000;
        for i in 0..n {
            let birth = Date::ymd(1994 + (i % 4), 1 + (i % 12) as u8, 15);
            let reg = sample_registration(&mut rng, &model, birth, today());
            let truly_minor = Date::age_on(birth, today()) < 18;
            if truly_minor && !reg.is_registered_minor(today()) {
                lying_adults += 1;
            }
        }
        let frac = lying_adults as f64 / n as f64;
        assert!((0.2..0.6).contains(&frac), "lying-adult fraction {frac}");
    }

    #[test]
    fn add_years_handles_leap_day() {
        assert_eq!(add_years(Date::ymd(1996, 2, 29), 1), Date::ymd(1997, 2, 28));
        assert_eq!(add_years(Date::ymd(1996, 2, 29), 4), Date::ymd(2000, 2, 29));
        assert_eq!(add_years(Date::ymd(1996, 2, 29), -1), Date::ymd(1995, 2, 28));
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 5000;
        let total: u64 = (0..n).map(|_| geometric_with_mean(&mut rng, 20.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((15.0..25.0).contains(&mean), "mean {mean}");
        assert_eq!(geometric_with_mean(&mut rng, 0.0), 0);
    }
}
