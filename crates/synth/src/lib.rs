//! # hsp-synth — synthetic population generator
//!
//! The paper's raw material is live 2012 Facebook data for three real
//! high schools plus confidential rosters — none of which can exist in a
//! reproduction (see DESIGN.md §1). This crate generates the synthetic
//! counterpart: a city-scale population around a target high school,
//! with the structural properties the attack exploits calibrated to the
//! paper's published aggregates:
//!
//! - an **age-lying model** ([`lying`]) producing minors registered as
//!   adults at the paper's observed rates;
//! - **openness distributions** ([`privacy_assign`]) matching Table 5's
//!   per-school privacy-setting columns;
//! - a **friendship model** ([`generator`]) with dense within-grade ties,
//!   decaying cross-grade/alumni ties, churned former students, parents,
//!   and a community pool sized so candidate-set counts land near
//!   Table 2's.
//!
//! Everything is deterministic in the scenario seed.

pub mod churn;
pub mod config;
pub mod generator;
pub mod lying;
pub mod metro;
pub mod names;
pub mod privacy_assign;
pub mod scenario;

pub use churn::ChurnModel;
pub use config::{FriendshipModel, LyingModel, OpennessProfile, ScenarioConfig};
pub use generator::{generate, generate_sharded};
pub use metro::{metro, metro_sharded, MetroConfig, MetroWorld};
pub use scenario::{Scenario, ScenarioSummary};
