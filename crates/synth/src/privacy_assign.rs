//! Sampling privacy settings and profile richness from an
//! [`OpennessProfile`].

use crate::config::OpennessProfile;
use crate::lying::geometric_with_mean;
use hsp_graph::{Audience, InterestedIn, PrivacySettings, RelationshipStatus};
use rand::Rng;

fn aud(rng: &mut impl Rng, p_public: f64) -> Audience {
    if rng.gen_bool(p_public.clamp(0.0, 1.0)) {
        Audience::Public
    } else if rng.gen_bool(0.5) {
        Audience::FriendsOfFriends
    } else {
        Audience::Friends
    }
}

/// Profile richness drawn alongside the settings.
#[derive(Clone, Debug)]
pub struct ProfileExtras {
    pub photos_shared: u32,
    pub wall_posts: u32,
    pub relationship: Option<RelationshipStatus>,
    pub interested_in: Option<InterestedIn>,
    pub lists_school: bool,
    pub lists_city: bool,
    pub lists_hometown: bool,
    pub has_contact_info: bool,
}

/// Draw settings + extras for one account.
pub fn sample_account(rng: &mut impl Rng, o: &OpennessProfile) -> (PrivacySettings, ProfileExtras) {
    let settings = PrivacySettings {
        friend_list: aud(rng, o.friend_list_public),
        education: aud(rng, o.education_public),
        relationship: aud(rng, o.relationship_public.max(0.3)),
        interested_in: aud(rng, o.interested_in_public.max(0.3)),
        birthday: aud(rng, o.birthday_public),
        hometown: aud(rng, o.hometown_public),
        current_city: aud(rng, o.lists_city.min(0.95)),
        photos: aud(rng, (o.photos_mean / (o.photos_mean + 15.0)).clamp(0.05, 0.95)),
        contact_info: aud(rng, 0.04),
        wall: aud(rng, 0.25),
        public_search: rng.gen_bool(o.public_search.clamp(0.0, 1.0)),
        message_button: if rng.gen_bool(o.message_public.clamp(0.0, 1.0)) {
            Audience::Public
        } else {
            Audience::Friends
        },
    };
    // The Table 5 rows measure *stranger-visible* relationship /
    // interested-in, i.e. (field filled) AND (audience public). We fold
    // both coins into whether the field is present and make presence the
    // probability target when the audience came out public.
    let relationship = rng.gen_bool(0.55).then(|| match rng.gen_range(0..4) {
        0 => RelationshipStatus::Single,
        1 => RelationshipStatus::InARelationship,
        2 => RelationshipStatus::Complicated,
        _ => RelationshipStatus::Married,
    });
    let interested_in = rng.gen_bool(0.5).then(|| match rng.gen_range(0..3) {
        0 => InterestedIn::Men,
        1 => InterestedIn::Women,
        _ => InterestedIn::Both,
    });
    let extras = ProfileExtras {
        photos_shared: geometric_with_mean(rng, o.photos_mean),
        wall_posts: geometric_with_mean(rng, o.photos_mean * 0.6),
        relationship,
        interested_in,
        lists_school: rng.gen_bool(o.lists_school.clamp(0.0, 1.0)),
        lists_city: rng.gen_bool(o.lists_city.clamp(0.0, 1.0)),
        lists_hometown: rng.gen_bool(o.hometown_public.clamp(0.0, 1.0)),
        has_contact_info: rng.gen_bool(0.08),
    };
    (settings, extras)
}

/// Exact-audience variant used when the experiment needs the marginal
/// probabilities to land precisely on the Table 5 columns: relationship
/// and interested-in visibility are driven directly by the openness
/// probabilities rather than split into presence × audience coins.
pub fn sample_account_calibrated(
    rng: &mut impl Rng,
    o: &OpennessProfile,
) -> (PrivacySettings, ProfileExtras) {
    let (mut settings, mut extras) = sample_account(rng, o);
    // Re-draw the two split fields as single coins.
    let rel_visible = rng.gen_bool(o.relationship_public.clamp(0.0, 1.0));
    settings.relationship = if rel_visible { Audience::Public } else { Audience::Friends };
    if rel_visible {
        extras.relationship = Some(RelationshipStatus::Single);
    }
    let int_visible = rng.gen_bool(o.interested_in_public.clamp(0.0, 1.0));
    settings.interested_in = if int_visible { Audience::Public } else { Audience::Friends };
    if int_visible {
        extras.interested_in = Some(InterestedIn::Both);
    }
    (settings, extras)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpennessProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hs3_like() -> OpennessProfile {
        OpennessProfile {
            friend_list_public: 0.87,
            public_search: 0.86,
            message_public: 0.91,
            education_public: 0.85,
            lists_school: 0.14,
            lists_city: 0.55,
            relationship_public: 0.34,
            interested_in_public: 0.33,
            birthday_public: 0.06,
            photos_mean: 57.0,
            hometown_public: 0.40,
        }
    }

    #[test]
    fn marginals_track_the_openness_profile() {
        let o = hs3_like();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 4000;
        let mut fl = 0;
        let mut search = 0;
        let mut msg = 0;
        let mut bday = 0;
        let mut photos_total: u64 = 0;
        for _ in 0..n {
            let (s, e) = sample_account(&mut rng, &o);
            if s.friend_list == Audience::Public {
                fl += 1;
            }
            if s.public_search {
                search += 1;
            }
            if s.message_button == Audience::Public {
                msg += 1;
            }
            if s.birthday == Audience::Public {
                bday += 1;
            }
            photos_total += e.photos_shared as u64;
        }
        let frac = |x: i32| x as f64 / n as f64;
        assert!((frac(fl) - 0.87).abs() < 0.03, "friend list {}", frac(fl));
        assert!((frac(search) - 0.86).abs() < 0.03);
        assert!((frac(msg) - 0.91).abs() < 0.03);
        assert!((frac(bday) - 0.06).abs() < 0.03);
        let photo_mean = photos_total as f64 / n as f64;
        assert!((photo_mean - 57.0).abs() < 6.0, "photos mean {photo_mean}");
    }

    #[test]
    fn calibrated_variant_pins_relationship_marginals() {
        let o = hs3_like();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 4000;
        let mut rel_visible = 0;
        for _ in 0..n {
            let (s, e) = sample_account_calibrated(&mut rng, &o);
            if s.relationship == Audience::Public && e.relationship.is_some() {
                rel_visible += 1;
            }
        }
        let frac = rel_visible as f64 / n as f64;
        assert!((frac - 0.34).abs() < 0.03, "relationship visible {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let o = hs3_like();
        let a = {
            let mut rng = StdRng::seed_from_u64(99);
            sample_account(&mut rng, &o).0
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(99);
            sample_account(&mut rng, &o).0
        };
        assert_eq!(a, b);
    }
}
