//! The generated world plus ground-truth accessors used by evaluation.

use crate::config::ScenarioConfig;
use hsp_graph::{CityId, Network, Role, SchoolId, UserId};

/// A generated world: the network, the target school, and the config
/// that produced it. Ground-truth queries on this type play the role of
/// the paper's confidential rosters.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub config: ScenarioConfig,
    /// The target high school.
    pub school: SchoolId,
    /// A different high school (transfer destination; filter-rule cases).
    pub other_school: SchoolId,
    pub home_city: CityId,
    pub other_city: CityId,
    pub network: Network,
}

impl Scenario {
    /// Ground-truth set `M`: current students with accounts (sorted ids).
    pub fn roster(&self) -> Vec<UserId> {
        self.network.roster(self.school)
    }

    /// Roster restricted to one graduating class.
    pub fn roster_for_class(&self, grad_year: i32) -> Vec<UserId> {
        self.network.roster_for_class(self.school, grad_year)
    }

    /// Students who are true minors but registered adults (the paper's
    /// "lying minors", Table 5 row 1).
    pub fn lying_minor_students(&self) -> Vec<UserId> {
        self.roster()
            .into_iter()
            .filter(|&u| self.network.user(u).is_minor_registered_as_adult(self.network.today))
            .collect()
    }

    /// Students the OSN correctly believes to be minors.
    pub fn registered_minor_students(&self) -> Vec<UserId> {
        self.roster()
            .into_iter()
            .filter(|&u| self.network.user(u).is_registered_minor(self.network.today))
            .collect()
    }

    /// Former (transferred-out) students — the churn population.
    pub fn former_students(&self) -> Vec<UserId> {
        self.network
            .users()
            .filter(
                |u| matches!(u.role, Role::FormerStudent { school, .. } if school == self.school),
            )
            .map(|u| u.id)
            .collect()
    }

    /// Alumni of the target school.
    pub fn alumni(&self) -> Vec<UserId> {
        self.network
            .users()
            .filter(|u| matches!(u.role, Role::Alumnus { school, .. } if school == self.school))
            .map(|u| u.id)
            .collect()
    }

    /// Whether `u` is truly a current student (ground truth).
    pub fn is_student(&self, u: UserId) -> bool {
        self.network.user(u).role.is_current_student_at(self.school)
    }

    /// Ground-truth graduation year if `u` is a current student.
    pub fn student_grad_year(&self, u: UserId) -> Option<i32> {
        match self.network.user(u).role {
            Role::CurrentStudent { school, grad_year } if school == self.school => Some(grad_year),
            _ => None,
        }
    }

    /// Quick aggregate counts for logging / experiment tables.
    pub fn summary(&self) -> ScenarioSummary {
        let roster = self.roster();
        let lying = self.lying_minor_students().len();
        ScenarioSummary {
            name: self.config.name.clone(),
            total_users: self.network.user_count(),
            students_on_osn: roster.len(),
            lying_minor_students: lying,
            registered_minor_students: self.registered_minor_students().len(),
            former_students: self.former_students().len(),
            alumni: self.alumni().len(),
        }
    }
}

/// Aggregate counts of one generated world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioSummary {
    pub name: String,
    pub total_users: usize,
    pub students_on_osn: usize,
    pub lying_minor_students: usize,
    pub registered_minor_students: usize,
    pub former_students: usize,
    pub alumni: usize,
}

impl std::fmt::Display for ScenarioSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} users total; {} students on OSN ({} registered minors, {} minors registered as adults); {} former; {} alumni",
            self.name,
            self.total_users,
            self.students_on_osn,
            self.registered_minor_students,
            self.lying_minor_students,
            self.former_students,
            self.alumni,
        )
    }
}
