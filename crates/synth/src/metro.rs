//! Metro-scale world generation: dozens of high schools sharing one
//! city, built at millions of users per second.
//!
//! The single-school scenarios ([`crate::generator`]) are calibrated to
//! the paper's three schools and spend their per-user budget on fidelity
//! (lying-model calibration, households, interactions, circles). The
//! metro generator answers a different question — *what does the attack
//! cost at city scale?* — so it trades per-user richness for volume:
//!
//! - tens of schools, each with four current classes, an alumni block
//!   and parent accounts, all sharing one city;
//! - a community pool (the bulk of the million-plus users) whose random
//!   ties bridge every school into one connected metro graph;
//! - closed-form user-id layout (school blocks, then the pool), so edge
//!   phases reference endpoints without any lookups;
//! - pre-interned name pools ([`crate::names::name_sym_pools`]) — the
//!   per-user hot path never allocates or touches the interner lock;
//! - edges go straight into a frozen CSR adjacency via
//!   [`FriendGraph::from_edge_list`] — per-user edge `Vec`s never exist.
//!
//! Generation uses the same sharded chunk-stream machinery as the
//! calibrated generator: every phase draws from per-chunk RNG streams,
//! so a world is bit-identical at any thread count (pinned by the
//! `fingerprint_is_thread_invariant` test and the builder-vs-sealed
//! property tests).

use crate::generator::sharded_chunks;
use crate::names::{name_sym_pools, NameSymPools};
use hsp_graph::{
    ContactInfo, Date, EducationEntry, FriendGraph, Gender, Network, PrivacySettings,
    ProfileContent, Registration, Role, School, SchoolId, SchoolKind, User, UserId,
};
use rand::{Rng, RngCore};

/// Phase ids for the metro streams (disjoint from the calibrated
/// generator's 1..=13 so a shared seed never correlates draws).
mod phase {
    pub const STUDENTS: u64 = 20;
    pub const ALUMNI: u64 = 21;
    pub const PARENTS: u64 = 22;
    pub const POOL: u64 = 23;
    pub const EDGES_STUDENTS: u64 = 24;
    pub const EDGES_ALUMNI: u64 = 25;
    pub const EDGES_POOL: u64 = 26;
}

/// Shape of a metro world. All counts are exact (no adoption coins):
/// the id layout is closed-form, which is what lets edge generation run
/// without a single lookup.
#[derive(Clone, Debug)]
pub struct MetroConfig {
    pub seed: u64,
    /// Simulated crawl date.
    pub today: Date,
    /// Number of high schools sharing the city.
    pub schools: u32,
    /// Current students per school (split over four classes).
    pub students_per_school: u32,
    /// Alumni accounts per school (recent cohorts, mostly listing it).
    pub alumni_per_school: u32,
    /// Parent accounts per school, each friended to one student.
    pub parents_per_school: u32,
    /// City-wide community pool bridging the schools.
    pub pool_users: u32,
    /// Mean within-school friendships initiated per student.
    pub student_degree_mean: u32,
}

impl MetroConfig {
    /// The full metro benchmark world: ~1.15 M users, 40 schools.
    pub fn city() -> Self {
        MetroConfig {
            seed: 0x3e7_2012,
            today: Date::ymd(2012, 3, 15),
            schools: 40,
            students_per_school: 1_200,
            alumni_per_school: 600,
            parents_per_school: 400,
            pool_users: 1_062_000,
            student_degree_mean: 12,
        }
    }

    /// A small world with the same structure, for smoke tests and the
    /// `metro` experiment: 4 schools, ~5 k users.
    pub fn tiny() -> Self {
        MetroConfig {
            seed: 0x3e7_2012,
            today: Date::ymd(2012, 3, 15),
            schools: 4,
            students_per_school: 160,
            alumni_per_school: 80,
            parents_per_school: 40,
            pool_users: 4_000,
            student_degree_mean: 12,
        }
    }

    /// Users in one school block (students + alumni + parents).
    pub fn block(&self) -> usize {
        (self.students_per_school + self.alumni_per_school + self.parents_per_school) as usize
    }

    /// Total users this config commits.
    pub fn total_users(&self) -> usize {
        self.schools as usize * self.block() + self.pool_users as usize
    }
}

/// A generated metro world.
#[derive(Clone, Debug)]
pub struct MetroWorld {
    pub config: MetroConfig,
    pub network: Network,
    pub city: hsp_graph::CityId,
    pub schools: Vec<SchoolId>,
}

impl MetroWorld {
    /// Ground-truth roster + per-student grad years for one school
    /// (served by the sealed SoA columns).
    pub fn school_truth(&self, school: SchoolId) -> (Vec<UserId>, Vec<(UserId, i32)>) {
        let roster = self.network.roster(school);
        let years = roster
            .iter()
            .filter_map(|&u| self.network.student_grad_year(u).map(|g| (u, g)))
            .collect();
        (roster, years)
    }
}

/// Generate a metro world on all available cores.
pub fn metro(cfg: &MetroConfig) -> MetroWorld {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    metro_sharded(cfg, threads)
}

/// Generate a metro world with exactly `threads` spec threads. The
/// network is bit-identical for every `threads` value.
pub fn metro_sharded(cfg: &MetroConfig, threads: usize) -> MetroWorld {
    let threads = threads.max(1);
    let seed = cfg.seed;
    let schools_n = cfg.schools as usize;
    let st = cfg.students_per_school as usize;
    let al = cfg.alumni_per_school as usize;
    let pa = cfg.parents_per_school as usize;
    let block = cfg.block();
    let pool_n = cfg.pool_users as usize;
    let total = cfg.total_users();
    let pool_base = schools_n * block;
    let senior = 2012;

    // Build the name pools before the parallel phases: after this the
    // hot path reads plain `Vec<Sym>` tables, no locks.
    let pools = name_sym_pools();

    // Phase timing to stderr when METRO_TIMING is set.
    let timing = std::env::var_os("METRO_TIMING").is_some();
    let mut mark = std::time::Instant::now();
    let mut lap = |label: &str| {
        if timing {
            eprintln!("[metro] {label}: {:.3}s", mark.elapsed().as_secs_f64());
        }
        mark = std::time::Instant::now();
    };

    let mut net = Network::with_capacity(cfg.today, total);
    let city = net.add_city("Metro City", "NY");
    let schools: Vec<SchoolId> = (0..cfg.schools)
        .map(|s| {
            net.add_school(School {
                id: SchoolId(0),
                name: format!("Metro High School {:02}", s + 1).into(),
                city,
                kind: SchoolKind::HighSchool,
                public_enrollment_estimate: cfg.students_per_school,
            })
        })
        .collect();

    // ---- user spec phases (parallel, thread-invariant) ---------------

    let today = cfg.today;
    let students = sharded_chunks(seed, phase::STUDENTS, threads, schools_n * st, |rng, i| {
        let s = i / st;
        let k = i % st;
        // Four classes, seniors (2012) through freshmen (2015).
        let grad_year = senior + (k as i32 & 3);
        let birth = birth_date(rng, grad_year - 18, 1);
        // Registered-adult (lying) minors at roughly the paper's rate.
        let lies = rng.gen_bool(0.45);
        let registered_birth =
            if lies { Date::ymd(birth.year() - 3, birth.month(), birth.day()) } else { birth };
        let mut profile = fast_profile(rng, pools);
        if rng.gen_bool(0.78) {
            profile.education.push(EducationEntry::high_school(schools[s], grad_year));
        }
        if rng.gen_bool(0.05) {
            profile.networks.push(schools[s]);
        }
        User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: registered_birth,
                registration_date: Date::ymd(2010, 6, 15),
            },
            profile,
            privacy: fast_privacy(rng, lies || !is_minor(registered_birth, today)),
            role: Role::CurrentStudent { school: schools[s], grad_year },
        }
    });

    let alumni = sharded_chunks(seed, phase::ALUMNI, threads, schools_n * al, |rng, i| {
        let s = i / al;
        let k = i % al;
        // Recent cohorts, 2004..=2011.
        let grad_year = senior - 1 - (k as i32 & 7);
        let birth = birth_date(rng, grad_year - 18, 1);
        let mut profile = fast_profile(rng, pools);
        if rng.gen_bool(0.85) {
            profile.education.push(EducationEntry::high_school(schools[s], grad_year));
        }
        User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2009, 9, 1),
            },
            profile,
            privacy: fast_privacy(rng, true),
            role: Role::Alumnus { school: schools[s], grad_year },
        }
    });

    // Parents pick their child in the spec phase so the role's ground
    // truth and the friendship edge agree.
    let parents = sharded_chunks(seed, phase::PARENTS, threads, schools_n * pa, |rng, i| {
        let s = i / pa;
        let child = UserId::from_index(s * block + pick(rng, st));
        let birth = birth_date(rng, 1954, 20);
        let user = User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2011, 2, 1),
            },
            profile: fast_profile(rng, pools),
            privacy: fast_privacy(rng, true),
            role: Role::Parent { children: vec![child] },
        };
        (user, child)
    });

    let pool = sharded_chunks(seed, phase::POOL, threads, pool_n, |rng, _| {
        let birth = birth_date(rng, 1955, 35);
        User {
            id: UserId(0),
            true_birth_date: birth,
            registration: Registration {
                registered_birth_date: birth,
                registration_date: Date::ymd(2010, 1, 1),
            },
            profile: fast_profile(rng, pools),
            privacy: fast_privacy(rng, true),
            role: Role::OtherResident,
        }
    });

    lap("spec phases");

    // ---- commit (serial, id order == block layout) -------------------

    let mut st_it = students.into_iter().flatten();
    let mut al_it = alumni.into_iter().flatten();
    let mut pa_it = parents.into_iter().flatten();
    let mut parent_edges: Vec<(UserId, UserId)> = Vec::with_capacity(schools_n * pa);
    for _ in 0..schools_n {
        for _ in 0..st {
            net.add_user(st_it.next().expect("student spec"));
        }
        for _ in 0..al {
            net.add_user(al_it.next().expect("alumni spec"));
        }
        for _ in 0..pa {
            let (user, child) = pa_it.next().expect("parent spec");
            let id = net.add_user(user);
            parent_edges.push((id, child));
        }
    }
    for user in pool.into_iter().flatten() {
        net.add_user(user);
    }
    debug_assert_eq!(net.user_count(), total);
    lap("commit");

    // ---- edge phases (closed-form endpoints, no lookups) -------------

    let deg = cfg.student_degree_mean as usize;
    let student_edges =
        sharded_chunks(seed, phase::EDGES_STUDENTS, threads, schools_n * st, |rng, i| {
            let s = i / st;
            let k = i % st;
            let u = UserId::from_index(s * block + k);
            let n = deg / 2 + pick(rng, deg + 1);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let v = UserId::from_index(s * block + pick(rng, st));
                out.push((u, v)); // self-loops dropped by from_edge_list
            }
            out
        });

    // Each alumnus bridges back: two students of their school plus one
    // fellow alumnus.
    let alumni_edges =
        sharded_chunks(seed, phase::EDGES_ALUMNI, threads, schools_n * al, |rng, i| {
            let s = i / al;
            let k = i % al;
            let u = UserId::from_index(s * block + st + k);
            [
                (u, UserId::from_index(s * block + pick(rng, st))),
                (u, UserId::from_index(s * block + pick(rng, st))),
                (u, UserId::from_index(s * block + st + pick(rng, al))),
            ]
        });

    // Pool ties bridge the whole city: mostly pool-to-pool, with a
    // steady trickle into the school blocks (students' non-school
    // friends). Fixed-size output (self-loop = "no edge") keeps this
    // phase allocation-free.
    let pool_edges = sharded_chunks(seed, phase::EDGES_POOL, threads, pool_n, |rng, j| {
        let u = UserId::from_index(pool_base + j);
        let tie = |rng: &mut rand::rngs::StdRng| {
            if rng.gen_bool(0.15) {
                UserId::from_index(pick(rng, pool_base))
            } else {
                UserId::from_index(pool_base + pick(rng, pool_n))
            }
        };
        let a = if rng.gen_bool(0.85) { tie(rng) } else { u };
        let b = if rng.gen_bool(0.35) { tie(rng) } else { u };
        [(u, a), (u, b)]
    });

    lap("edge phases");
    let mut edges: Vec<(UserId, UserId)> = Vec::with_capacity(
        schools_n * st * (deg + deg / 2) + schools_n * al * 3 + pool_n * 2 + parent_edges.len(),
    );
    edges.extend(student_edges.into_iter().flatten().flatten());
    edges.extend(alumni_edges.into_iter().flatten().flatten());
    edges.extend(parent_edges);
    edges.extend(pool_edges.into_iter().flatten().flatten());

    lap("edge collect");
    net.set_friend_graph(FriendGraph::from_edge_list(total, &edges));
    drop(edges);
    lap("csr build");
    net.seal();
    lap("seal");

    MetroWorld { config: cfg.clone(), network: net, city, schools }
}

fn is_minor(registered_birth: Date, today: Date) -> bool {
    Date::age_on(registered_birth, today) < 18
}

/// Uniform index in `0..n` from one `next_u64` via multiply-shift — the
/// stub `gen_range` reduces through a u128 modulo, which is the single
/// hottest instruction at a million-plus draws per build.
#[inline]
fn pick(rng: &mut impl RngCore, n: usize) -> usize {
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as usize
}

/// A birth date from one draw: year uniform in `base..base+span`,
/// month/day from independent bit lanes of the same word.
#[inline]
fn birth_date(rng: &mut impl RngCore, base: i32, span: u32) -> Date {
    let v = rng.next_u64();
    Date::ymd(
        base + (v as u32 % span) as i32,
        1 + ((v >> 32) as u32 % 12) as u8,
        1 + ((v >> 40) as u32 % 28) as u8,
    )
}

/// A profile from the pre-interned pools: no allocation besides the
/// (empty) networks/education vecs, and the scalar fields all come from
/// bit lanes of a single draw.
fn fast_profile(rng: &mut impl Rng, pools: &NameSymPools) -> ProfileContent {
    let v = rng.next_u64();
    let gender = if v & 1 == 0 { Gender::Female } else { Gender::Male };
    ProfileContent {
        first_name: pools.first(rng, gender),
        last_name: pools.last(rng),
        gender,
        has_profile_photo: !(v >> 1).is_multiple_of(10),
        networks: Vec::new(),
        education: Vec::new(),
        hometown: None,
        current_city: None,
        relationship: None,
        interested_in: None,
        photos_shared: ((v >> 8) % 40) as u32,
        wall_posts: ((v >> 16) % 60) as u32,
        contact: ContactInfo::default(),
    }
}

/// Privacy tier by a single draw. `open_pool` selects the adult-like
/// mix (registered adults are what the search portal returns).
fn fast_privacy(rng: &mut impl Rng, open_pool: bool) -> PrivacySettings {
    let r = (rng.next_u64() % 100) as u32;
    if open_pool {
        match r {
            0..=29 => PrivacySettings::maximum_sharing(),
            30..=84 => PrivacySettings::facebook_adult_default(),
            _ => PrivacySettings::locked_down(),
        }
    } else {
        match r {
            0..=14 => PrivacySettings::facebook_adult_default(),
            15..=79 => PrivacySettings::facebook_minor_default(),
            _ => PrivacySettings::locked_down(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_metro_builds_with_expected_shape() {
        let cfg = MetroConfig::tiny();
        let world = metro_sharded(&cfg, 2);
        let net = &world.network;
        assert_eq!(net.user_count(), cfg.total_users());
        assert_eq!(world.schools.len(), 4);
        assert!(net.is_sealed());
        assert!(net.friend_graph().is_sealed());
        // Every school has a full roster with four classes.
        for &s in &world.schools {
            let roster = net.roster(s);
            assert_eq!(roster.len(), cfg.students_per_school as usize);
            let years: std::collections::HashSet<i32> =
                roster.iter().filter_map(|&u| net.student_grad_year(u)).collect();
            assert_eq!(years, (2012..=2015).collect());
            // Lister index covers at least the listing students + alumni.
            let listers = net.school_listers(s).expect("sealed");
            assert!(listers.len() > cfg.students_per_school as usize / 2);
        }
        // The graph is genuinely city-wide: pool edges exist.
        assert!(net.friend_graph().edge_count() > cfg.total_users());
    }

    #[test]
    fn fingerprint_is_thread_invariant() {
        let cfg = MetroConfig {
            schools: 3,
            students_per_school: 48,
            alumni_per_school: 24,
            parents_per_school: 12,
            pool_users: 600,
            ..MetroConfig::tiny()
        };
        let f1 = metro_sharded(&cfg, 1).network.fingerprint();
        let f2 = metro_sharded(&cfg, 2).network.fingerprint();
        let f5 = metro_sharded(&cfg, 5).network.fingerprint();
        assert_eq!(f1, f2);
        assert_eq!(f1, f5);
    }

    #[test]
    fn parent_edges_agree_with_ground_truth() {
        let world = metro_sharded(&MetroConfig::tiny(), 2);
        let net = &world.network;
        let mut checked = 0;
        for u in net.users() {
            if let Role::Parent { children } = &u.role {
                for &c in children {
                    assert!(net.are_friends(u.id, c), "parent {:?} not friends with child", u.id);
                    assert!(matches!(net.user(c).role, Role::CurrentStudent { .. }));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn seeds_differ_between_schools() {
        let world = metro_sharded(&MetroConfig::tiny(), 2);
        let a = world.network.roster(world.schools[0]);
        let b = world.network.roster(world.schools[1]);
        assert!(a.iter().all(|u| !b.contains(u)));
    }
}
