//! One bench per paper *table*: each criterion group regenerates the
//! table's underlying computation at tiny scale (see DESIGN.md §3 for
//! the table → module mapping; full-scale numbers come from the
//! `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hsp_bench::BenchWorld;
use hsp_core::{audit_adult_registered, run_basic, run_enhanced, EnhanceOptions};
use hsp_crawler::OsnAccess;
use hsp_policy::{facebook_matrix, googleplus_matrix};
use std::hint::black_box;

/// Table 1: probe the Facebook visibility matrix from the policy engine.
fn table1_policy(c: &mut Criterion) {
    c.bench_function("table1_policy_matrix_facebook", |b| b.iter(|| black_box(facebook_matrix())));
}

/// Table 2: the full seed → core → candidate discovery pipeline.
fn table2_discovery(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("discovery_pipeline", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "t2");
            let d = run_basic(&mut crawler, &world.config).expect("discovery");
            black_box(d.candidate_count())
        })
    });
    group.finish();
}

/// Table 3: effort accounting across basic + enhanced phases.
fn table3_effort(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("effort_basic_plus_enhanced", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "t3");
            let d = run_basic(&mut crawler, &world.config).expect("discovery");
            let t = world.config.school_size_estimate as usize;
            let e = run_enhanced(
                &mut crawler,
                &d,
                &EnhanceOptions {
                    t,
                    filtering: true,
                    enhance: true,
                    school_city: world.scenario.home_city,
                },
            )
            .expect("enhanced");
            black_box((crawler.effort().total(), e.extended_core.len()))
        })
    });
    group.finish();
}

/// Table 4: the four method variants on a fixed discovery (re-rank +
/// filter only; crawling is cached inside the prepared crawler).
fn table4_variants(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let (mut crawler, discovery) = world.discovery();
    let t = world.config.school_size_estimate as usize;
    // Warm the profile cache once so the bench isolates the inference.
    let _ = run_enhanced(
        &mut crawler,
        &discovery,
        &EnhanceOptions {
            t,
            filtering: true,
            enhance: true,
            school_city: world.scenario.home_city,
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("table4");
    for (label, enhance, filter) in
        [("basic_filter", false, true), ("enhanced", true, false), ("enhanced_filter", true, true)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let e = run_enhanced(
                    &mut crawler,
                    &discovery,
                    &EnhanceOptions {
                        t,
                        filtering: filter,
                        enhance,
                        school_city: world.scenario.home_city,
                    },
                )
                .expect("variant");
                black_box(e.guessed_students(t).len())
            })
        });
    }
    group.finish();
}

/// Table 5: the profile-extension audit over the guessed set.
fn table5_audit(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let (mut crawler, discovery) = world.discovery();
    let t = world.config.school_size_estimate as usize;
    let guessed = discovery.guessed_students(t);
    // Warm caches.
    let _ = audit_adult_registered(&mut crawler, &guessed).unwrap();
    c.bench_function("table5_profile_audit", |b| {
        b.iter(|| black_box(audit_adult_registered(&mut crawler, &guessed).unwrap()))
    });
}

/// Table 6: probe the Google+ matrix.
fn table6_policy(c: &mut Criterion) {
    c.bench_function("table6_policy_matrix_gplus", |b| b.iter(|| black_box(googleplus_matrix())));
}

criterion_group!(
    tables,
    table1_policy,
    table2_discovery,
    table3_effort,
    table4_variants,
    table5_audit,
    table6_policy
);
criterion_main!(tables);
