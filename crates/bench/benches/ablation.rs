//! Ablation benches for the design choices DESIGN.md calls out:
//! bulk-vs-incremental edge insertion, sorted-merge vs hash-set mutual
//! friends, and in-process vs real-TCP exchange cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hsp_bench::BenchWorld;
use hsp_crawler::OsnAccess;
use hsp_graph::{sorted_intersection_len, FriendGraph, UserId};
use hsp_http::{Client, DirectExchange, Exchange, Request, Server};
use std::collections::HashSet;
use std::hint::black_box;

fn edges(n: usize) -> Vec<(UserId, UserId)> {
    let mut state = 11u64;
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n).map(|_| (UserId(rand() % 2000), UserId(rand() % 2000))).collect()
}

/// Design choice: bulk edge insertion (append + sort + dedup) vs
/// per-edge sorted insertion. The generator inserts ~1M edges.
fn edge_insertion(c: &mut Criterion) {
    let e = edges(50_000);
    let mut group = c.benchmark_group("ablation_edges");
    group.sample_size(10);
    group.bench_function("bulk_insert_50k", |b| {
        b.iter(|| {
            let mut g = FriendGraph::with_capacity(2000);
            g.bulk_insert(e.iter().copied());
            black_box(g.edge_count())
        })
    });
    group.bench_function("incremental_insert_50k", |b| {
        b.iter(|| {
            let mut g = FriendGraph::with_capacity(2000);
            for &(a, bb) in &e {
                g.add_friendship(a, bb);
            }
            black_box(g.edge_count())
        })
    });
    group.finish();
}

/// Design choice: sorted-merge intersection (stranger test, Jaccard)
/// vs hash-set intersection.
fn mutual_friends(c: &mut Criterion) {
    let a: Vec<UserId> = (0..500).map(|i| UserId(i * 2)).collect();
    let b_list: Vec<UserId> = (0..500).map(|i| UserId(i * 3)).collect();
    let mut group = c.benchmark_group("ablation_intersection");
    group.bench_function("sorted_merge_500", |b| {
        b.iter(|| black_box(sorted_intersection_len(&a, &b_list)))
    });
    group.bench_function("hashset_500", |b| {
        b.iter(|| {
            let set: HashSet<UserId> = a.iter().copied().collect();
            black_box(b_list.iter().filter(|u| set.contains(u)).count())
        })
    });
    group.finish();
}

/// Design choice: in-process exchange vs real loopback TCP for one
/// profile fetch (quantifies what the `DirectExchange` fast path buys).
fn transport(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    // Sign up one account over the direct path so both transports share
    // platform state.
    let mut direct = DirectExchange::new(world.handler.clone());
    direct.exchange(Request::post_form("/signup", &[("user", "bench"), ("pass", "x")])).unwrap();
    direct.exchange(Request::post_form("/login", &[("user", "bench"), ("pass", "x")])).unwrap();
    let server = Server::start(world.handler.clone()).expect("bind");
    let mut tcp = Client::new(server.addr());
    tcp.exchange(Request::post_form("/login", &[("user", "bench"), ("pass", "x")])).unwrap();
    let target = format!("/profile/{}", world.scenario.roster()[0]);

    let mut group = c.benchmark_group("ablation_transport");
    group.bench_function("direct_profile_fetch", |b| {
        b.iter(|| black_box(direct.exchange(Request::get(&target)).unwrap().status))
    });
    group.bench_function("tcp_profile_fetch", |b| {
        b.iter(|| black_box(tcp.exchange(Request::get(&target)).unwrap().status))
    });
    group.finish();
    server.shutdown();
}

/// Design choice: the enhanced pass's extra crawling vs what it buys
/// (runtime side; the accuracy side is `experiments ablation-epsilon`).
fn enhanced_cost(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let mut group = c.benchmark_group("ablation_enhanced");
    group.sample_size(10);
    group.bench_function("basic_only", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "ab");
            let d = hsp_core::run_basic(&mut crawler, &world.config).unwrap();
            black_box(crawler.effort().total() + d.ranked.len() as u64)
        })
    });
    group.bench_function("basic_plus_enhanced", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "ab2");
            let d = hsp_core::run_basic(&mut crawler, &world.config).unwrap();
            let t = world.config.school_size_estimate as usize;
            let e = hsp_core::run_enhanced(
                &mut crawler,
                &d,
                &hsp_core::EnhanceOptions {
                    t,
                    filtering: true,
                    enhance: true,
                    school_city: world.scenario.home_city,
                },
            )
            .unwrap();
            black_box(crawler.effort().total() + e.ranked.len() as u64)
        })
    });
    group.finish();
}

criterion_group!(ablation, edge_insertion, mutual_friends, transport, enhanced_cost);
criterion_main!(ablation);
