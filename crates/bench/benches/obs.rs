//! Micro-benchmarks of the observability substrate, guarding the
//! "recording is atomics-only" contract: counter/gauge adds, histogram
//! records, pre-resolved route observation, and full registry
//! snapshot/exposition. Headline per-op numbers are appended to
//! `BENCH_obs.json` at the workspace root so regressions across PRs
//! are visible from the artifact history.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsp_obs::{Registry, RouteMetrics};
use std::time::Instant;

/// Mean nanoseconds per op of `f` over `iters` runs (one warmup pass).
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Append one run's headline numbers to `<workspace>/BENCH_obs.json`
/// (a JSON array of run objects; created on first use).
fn append_headline(entries: &[(&str, f64)]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    let mut run = serde_json::Map::new();
    run.insert("bench".to_string(), serde_json::Value::from("obs"));
    for (name, ns) in entries {
        run.insert(format!("{name}_ns"), serde_json::Value::from(*ns));
    }
    if let Some(arr) = runs.as_array_mut() {
        arr.push(serde_json::Value::Object(run));
    }
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[bench] appended headline numbers to BENCH_obs.json");
        }
    }
}

fn obs_hot_path(c: &mut Criterion) {
    let reg = Registry::new();
    let counter = reg.counter("bench_counter_total");
    let gauge = reg.gauge("bench_gauge");
    let hist = reg.histogram("bench_hist_us");
    let route = RouteMetrics::register(&reg, "/bench/:uid");

    let mut group = c.benchmark_group("obs_hot");
    group.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(1))));
    group.bench_function("gauge_inc_dec", |b| {
        b.iter(|| {
            gauge.inc();
            gauge.dec();
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 40));
        })
    });
    group.bench_function("route_observe", |b| {
        b.iter(|| route.observe(black_box(200), black_box(137), 64, 512))
    });
    group.finish();

    // Self-timed headline numbers (the criterion stub prints but does
    // not expose its means), appended to the workspace artifact.
    const ITERS: u64 = 100_000;
    let counter_ns = time_ns(ITERS, || counter.add(black_box(1)));
    let mut v = 1u64;
    let hist_ns = time_ns(ITERS, || {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        hist.record(black_box(v >> 40));
    });
    let route_ns = time_ns(ITERS, || route.observe(black_box(200), black_box(137), 64, 512));
    let snapshot_ns = time_ns(1_000, || {
        black_box(reg.snapshot());
    });
    let render_ns = time_ns(1_000, || {
        black_box(reg.render_prometheus());
    });
    append_headline(&[
        ("counter_add", counter_ns),
        ("histogram_record", hist_ns),
        ("route_observe", route_ns),
        ("registry_snapshot", snapshot_ns),
        ("render_prometheus", render_ns),
    ]);
}

fn obs_exposition(c: &mut Criterion) {
    // A registry about the size a full-attack lab produces.
    let reg = Registry::new();
    for i in 0..8 {
        let r = RouteMetrics::register(&reg, ["/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"][i]);
        for k in 0..64u64 {
            r.observe(200, k * 17 + 1, 64, 900);
        }
    }
    let mut group = c.benchmark_group("obs_exposition");
    group.bench_function("snapshot", |b| b.iter(|| black_box(reg.snapshot())));
    group.bench_function("render_prometheus", |b| b.iter(|| black_box(reg.render_prometheus())));
    group.finish();
}

criterion_group!(benches, obs_hot_path, obs_exposition);
criterion_main!(benches);
