//! One bench per paper *figure*: the sweep computations behind
//! Figures 1–4, at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hsp_bench::BenchWorld;
use hsp_core::{
    evaluate, partial_estimate, run_basic, run_coppaless_heuristic, run_enhanced, CoppalessOptions,
    EnhanceOptions, GroundTruth,
};
use hsp_policy::FacebookPolicy;
use std::hint::black_box;
use std::sync::Arc;

/// Figure 1: the threshold sweep (evaluation only; crawl pre-warmed).
fn fig1_sweep(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let (mut crawler, discovery) = world.discovery();
    let truth = GroundTruth::from_scenario(&world.scenario);
    let size = world.config.school_size_estimate as usize;
    let enhanced = run_enhanced(
        &mut crawler,
        &discovery,
        &EnhanceOptions {
            t: size,
            filtering: true,
            enhance: true,
            school_city: world.scenario.home_city,
        },
    )
    .unwrap();
    c.bench_function("fig1_threshold_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in (size / 2..=size * 2).step_by(size / 4) {
                let guessed = enhanced.guessed_students(t);
                let point =
                    evaluate(t, &guessed, |u| enhanced.inferred_year(u, &world.config), &truth);
                acc += point.found;
            }
            black_box(acc)
        })
    });
}

/// Figure 2: the §5.5 limited-ground-truth estimators.
fn fig2_partial(c: &mut Criterion) {
    c.bench_function("fig2_partial_estimators", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in (500..=2000).step_by(50) {
                let e = partial_estimate(t, t / 50, 43, 152, 1500);
                acc += e.est_pct_found + e.est_pct_false_positives;
            }
            black_box(acc)
        })
    });
}

/// Figure 3: the §7.1 COPPA-less heuristic end to end.
fn fig3_coppa(c: &mut Criterion) {
    let world = BenchWorld::tiny();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("coppaless_heuristic", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "f3");
            let run = run_coppaless_heuristic(
                &mut crawler,
                &world.config,
                &CoppalessOptions { alumni_years_back: 2, min_core_friends: 1 },
            )
            .expect("heuristic");
            black_box(run.guessed.len())
        })
    });
    group.finish();
}

/// Figure 4: the attack against the reverse-lookup countermeasure.
fn fig4_countermeasure(c: &mut Criterion) {
    let world = BenchWorld::with_policy(Arc::new(FacebookPolicy::without_reverse_lookup()));
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("discovery_without_reverse_lookup", |b| {
        b.iter(|| {
            let mut crawler = world.crawler(2, "f4");
            let d = run_basic(&mut crawler, &world.config).expect("discovery");
            black_box(d.candidate_count())
        })
    });
    group.finish();
}

criterion_group!(figures, fig1_sweep, fig2_partial, fig3_coppa, fig4_countermeasure);
criterion_main!(figures);
