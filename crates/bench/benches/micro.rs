//! Micro-benchmarks of the hot substrate paths: HTTP codec, HTML
//! parsing, reverse-lookup scoring, Jaccard, calendar arithmetic, and
//! world generation.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hsp_core::{rank_candidates, AttackConfig, CoreUser};
use hsp_graph::{jaccard_index, Date, SchoolId, UserId};
use hsp_http::wire::{decode_request, encode_request, Decoded};
use hsp_http::Request;
use hsp_synth::{generate, ScenarioConfig};
use std::hint::black_box;

fn http_codec(c: &mut Criterion) {
    let req = Request::get("/friends/u12345?page=7")
        .header("Host", "127.0.0.1:8080")
        .header("Cookie", "sid=sid-3-1a2b3c4d");
    let wire = encode_request(&req);
    let resp = hsp_http::Response::html("x".repeat(2048)).set_cookie("sid", "sid-3-1a2b3c4d");
    let mut group = c.benchmark_group("micro_http");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_request", |b| b.iter(|| black_box(encode_request(&req))));
    group.bench_function("encode_response_2k", |b| {
        b.iter(|| black_box(hsp_http::wire::encode_response(&resp)))
    });
    group.bench_function("decode_request", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&wire[..]);
            match decode_request(&mut buf).unwrap() {
                Decoded::Complete(r) => black_box(r.target.len()),
                Decoded::Incomplete => unreachable!(),
            }
        })
    });
    group.finish();
}

fn html_scrape(c: &mut Criterion) {
    // A realistic profile page (as rendered by the platform).
    let mut net = hsp_graph::Network::new(Date::ymd(2012, 3, 15));
    let city = net.add_city("Rivertown", "NY");
    let school = net.add_school(hsp_graph::School {
        id: SchoolId(0),
        name: "Rivertown High".into(),
        city,
        kind: hsp_graph::SchoolKind::HighSchool,
        public_enrollment_estimate: 500,
    });
    let mut view = hsp_policy::PublicView::minimal(
        UserId(5),
        "Cy Hale".into(),
        Some(hsp_graph::Gender::Male),
        true,
        vec![school],
    );
    view.education.push(hsp_graph::EducationEntry::high_school(school, 2013));
    view.current_city = Some(city);
    view.friend_list_visible = true;
    view.photos_shared = Some(33);
    view.message_button = true;
    let html = hsp_platform::render::profile_page(&net, &view);
    let mut group = c.benchmark_group("micro_html");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("render_profile_page", |b| {
        b.iter(|| black_box(hsp_platform::render::profile_page(&net, &view).len()))
    });
    group.bench_function("parse_profile_page", |b| {
        b.iter(|| black_box(hsp_crawler::parse_profile(&html)))
    });
    group.bench_function("render_parse_roundtrip", |b| {
        b.iter(|| black_box(hsp_markup::parse(&html)))
    });
    group.finish();
}

fn reverse_lookup_scoring(c: &mut Criterion) {
    // 50 cores × 400 friends drawn from 10k users — HS2-scale scoring.
    let config = AttackConfig::new(SchoolId(0), 2012, 1500);
    let mut state = 7u64;
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let core: Vec<CoreUser> = (0..50)
        .map(|i| CoreUser {
            id: UserId(100_000 + i),
            grad_year: 2012 + (i % 4) as i32,
            friends: (0..400).map(|_| UserId((rand() % 10_000) as u64)).collect(),
        })
        .collect();
    c.bench_function("micro_rank_candidates_50x400", |b| {
        b.iter(|| black_box(rank_candidates(&config, &core).len()))
    });
}

fn jaccard(c: &mut Criterion) {
    let a: Vec<UserId> = (0..300).map(|i| UserId(i * 2)).collect();
    let b_list: Vec<UserId> = (0..300).map(|i| UserId(i * 3)).collect();
    c.bench_function("micro_jaccard_300", |b| b.iter(|| black_box(jaccard_index(&a, &b_list))));
}

fn calendar(c: &mut Criterion) {
    c.bench_function("micro_date_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for d in 0..365 {
                let date = Date::from_days(15_000 + d);
                acc += date.to_days() + i64::from(Date::age_on(Date::ymd(1997, 6, 1), date));
            }
            black_box(acc)
        })
    });
}

fn world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_generate");
    group.sample_size(10);
    group.bench_function("tiny_world", |b| {
        b.iter(|| black_box(generate(&ScenarioConfig::tiny()).network.user_count()))
    });
    group.finish();
}

criterion_group!(
    micro,
    http_codec,
    html_scrape,
    reverse_lookup_scoring,
    jaccard,
    calendar,
    world_generation
);
criterion_main!(micro);
