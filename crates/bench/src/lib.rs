//! # hsp-bench — benchmark support
//!
//! Shared fixtures for the Criterion benches: a lazily-built tiny world
//! mounted on the platform, plus helpers to spin up fresh crawlers.
//! The benches regenerate each paper table/figure at reduced (tiny)
//! scale so a full `cargo bench` stays in CI-friendly time; the
//! experiments binary is the full-scale regenerator.

use hsp_core::{run_basic, AttackConfig, Discovery};
use hsp_crawler::Crawler;
use hsp_http::{DirectExchange, Handler};
use hsp_platform::{Platform, PlatformConfig};
use hsp_policy::{FacebookPolicy, Policy};
use hsp_synth::{generate, Scenario, ScenarioConfig};
use std::sync::Arc;

/// A reusable bench world: generated scenario + mounted platform.
pub struct BenchWorld {
    pub scenario: Scenario,
    pub handler: Arc<dyn Handler>,
    pub config: AttackConfig,
}

impl BenchWorld {
    /// Build the tiny scenario behind the standard Facebook policy.
    pub fn tiny() -> BenchWorld {
        Self::with_policy(Arc::new(FacebookPolicy::new()))
    }

    /// Build the tiny scenario behind an arbitrary policy.
    pub fn with_policy(policy: Arc<dyn Policy>) -> BenchWorld {
        let scenario = generate(&ScenarioConfig::tiny());
        // Benches re-run the crawl thousands of times against one
        // platform; lift the anti-crawl cap so iteration count, not the
        // simulated suspension rule, bounds the benchmark.
        let config = PlatformConfig { suspension_threshold: u64::MAX, ..PlatformConfig::default() };
        let platform = Platform::new(Arc::new(scenario.network.clone()), policy, config);
        let handler = platform.into_handler();
        let config = AttackConfig::new(
            scenario.school,
            scenario.network.senior_class_year(),
            scenario.config.public_enrollment_estimate,
        );
        BenchWorld { scenario, handler, config }
    }

    /// A fresh logged-in crawler with `n` accounts (uncached).
    pub fn crawler(&self, n: usize, label: &str) -> Crawler<DirectExchange> {
        let exchanges = (0..n).map(|_| DirectExchange::new(self.handler.clone())).collect();
        Crawler::new(exchanges, label).expect("bench crawler")
    }

    /// A completed basic discovery (fresh crawl).
    pub fn discovery(&self) -> (Crawler<DirectExchange>, Discovery) {
        let mut crawler = self.crawler(2, "bench");
        let discovery = run_basic(&mut crawler, &self.config).expect("bench discovery");
        (crawler, discovery)
    }
}
