//! City-wide concurrent attack harness over a metro-scale world.
//!
//! [`crate::runner::Lab`] mounts one calibrated [`hsp_synth::Scenario`];
//! this module mounts a [`hsp_synth::MetroConfig`] world (dozens of
//! schools sharing one city, up to millions of users) on a single
//! platform and attacks *every* school, each through its own
//! [`ParallelCrawler`] with per-school fake accounts. School runs are
//! independent — separate account seats, per-school seeds — so the
//! per-school outcomes are bit-identical regardless of worker count or
//! school scheduling order, which is what lets the metro bench assert
//! 1-worker vs 8-worker determinism at city scale.

use hsp_core::{
    evaluate, run_basic, run_enhanced, AttackConfig, EnhanceOptions, EvalPoint, GroundTruth,
};
use hsp_crawler::{AccountSeat, OsnAccess, ParallelCrawler};
use hsp_graph::{CityId, Network, SchoolId, UserId};
use hsp_http::{DirectExchange, Handler, ResilientExchange, RetryPolicy, RetryStats};
use hsp_obs::{Registry, VirtualClock};
use hsp_platform::{Platform, PlatformConfig};
use hsp_policy::FacebookPolicy;
use hsp_synth::{metro_sharded, MetroConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A metro world mounted on one platform, ready for a city-wide attack.
pub struct MetroLab {
    pub config: MetroConfig,
    pub network: Arc<Network>,
    pub city: CityId,
    pub schools: Vec<SchoolId>,
    pub obs: Arc<Registry>,
    pub platform: Arc<Platform>,
    handler: Arc<dyn Handler>,
}

/// What the attacker extracted from one school (the per-school Table-2 /
/// Table-4 analogue).
#[derive(Clone, Debug)]
pub struct SchoolOutcome {
    pub school: SchoolId,
    /// Ground-truth roster size.
    pub roster: usize,
    /// Search seeds (Table 2's |S|).
    pub seeds: usize,
    /// Core after filtering (Table 2's |C|).
    pub core: usize,
    /// Candidate set size (Table 2's |N(C)|-ish).
    pub candidates: usize,
    /// Scored guess list at t = enrollment estimate (Table 4).
    pub eval: EvalPoint,
    /// The guessed students themselves, in rank order.
    pub guessed: Vec<UserId>,
    /// HTTP requests this school's crawl cost.
    pub requests: u64,
}

impl SchoolOutcome {
    /// FNV-1a digest of everything Table 4 would print for this school:
    /// the exact guessed set (in order) plus the scored counts. Equal
    /// digests ⇒ bit-identical per-school results.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.school.0 as u64);
        eat(self.guessed.len() as u64);
        for &u in &self.guessed {
            eat(u.0);
        }
        eat(self.eval.found as u64);
        eat(self.eval.correct_year as u64);
        eat(self.eval.guessed as u64);
        eat(self.seeds as u64);
        eat(self.core as u64);
        eat(self.candidates as u64);
        h
    }
}

/// City-wide aggregate exposure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetroExposure {
    pub schools: usize,
    pub students_total: usize,
    pub students_found: usize,
    pub correct_year: usize,
    pub requests_total: u64,
}

impl MetroExposure {
    pub fn pct_found(&self) -> f64 {
        if self.students_total == 0 {
            0.0
        } else {
            100.0 * self.students_found as f64 / self.students_total as f64
        }
    }
}

impl MetroLab {
    /// Generate a metro world with `threads` generator threads and mount
    /// it on a Facebook-policy platform.
    pub fn facebook(config: &MetroConfig, threads: usize) -> MetroLab {
        Self::mount(metro_sharded(config, threads))
    }

    /// Mount an already-generated world (the bench generates once and
    /// reuses it across worker-count runs).
    pub fn mount(world: hsp_synth::MetroWorld) -> MetroLab {
        let hsp_synth::MetroWorld { config, network, city, schools } = world;
        let obs = Arc::new(Registry::new());
        let platform = Platform::with_registry(
            Arc::new(network),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
            Arc::clone(&obs),
        );
        let handler = platform.into_handler();
        MetroLab {
            config,
            network: Arc::clone(&platform.network),
            city,
            schools,
            obs,
            platform,
            handler,
        }
    }

    /// Ground truth for one school, straight off the sealed columns.
    pub fn ground_truth(&self, school: SchoolId) -> GroundTruth {
        let roster = self.network.roster(school);
        let years = roster
            .iter()
            .filter_map(|&u| self.network.student_grad_year(u).map(|g| (u, g)))
            .collect();
        GroundTruth::new(roster, years)
    }

    /// A per-school parallel crawler: `accounts` fake accounts crawled
    /// by `workers` deterministic workers, labelled so account names
    /// never collide across schools.
    fn school_crawler(
        &self,
        school_idx: usize,
        accounts: usize,
        workers: usize,
        seed: u64,
    ) -> Box<dyn OsnAccess> {
        let stats = Arc::new(RetryStats::default());
        let seed = seed ^ (school_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let seat = {
            let handler = Arc::clone(&self.handler);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                let clock = VirtualClock::shared();
                AccountSeat {
                    exchange: ResilientExchange::with_stats(
                        DirectExchange::new(Arc::clone(&handler)),
                        RetryPolicy::seeded(seed ^ i),
                        Arc::clone(&clock),
                        Arc::clone(&stats),
                    )
                    .with_tracer(Arc::clone(&tracer)),
                    clock: Some(clock),
                }
            }
        };
        let seats: Vec<_> = (0..accounts as u64).map(&seat).collect();
        let mut next = accounts as u64;
        let factory = move || {
            next += 1;
            seat(next)
        };
        Box::new(
            ParallelCrawler::builder(&format!("m{school_idx:02}"))
                .workers(workers)
                .observability(&self.obs)
                .retry_stats(stats)
                .recruit_with(factory, 8)
                .build(seats)
                .expect("metro crawler setup"),
        )
    }

    /// Run the full basic+enhanced attack against one school.
    pub fn attack_school(&self, school_idx: usize, workers: usize, seed: u64) -> SchoolOutcome {
        let school = self.schools[school_idx];
        let mut access = self.school_crawler(school_idx, 4, workers, seed);
        let config = AttackConfig::new(
            school,
            self.network.senior_class_year(),
            self.config.students_per_school,
        );
        let t = config.school_size_estimate as usize;
        let discovery = run_basic(access.as_mut(), &config).expect("metro basic");
        let enhanced = run_enhanced(
            access.as_mut(),
            &discovery,
            &EnhanceOptions { t, filtering: true, enhance: true, school_city: self.city },
        )
        .expect("metro enhanced");
        let truth = self.ground_truth(school);
        let guessed = enhanced.guessed_students(t);
        let eval = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
        SchoolOutcome {
            school,
            roster: truth.len(),
            seeds: discovery.seeds.len(),
            core: discovery.core.len(),
            candidates: discovery.candidate_count(),
            eval,
            guessed,
            requests: access.effort().total(),
        }
    }

    /// Attack every school in the city concurrently: up to
    /// `school_threads` schools in flight at once, each crawled by
    /// `workers` parallel-crawler workers. Outcomes are returned in
    /// school order and are independent of both thread counts.
    pub fn city_attack(
        &self,
        workers: usize,
        school_threads: usize,
        seed: u64,
    ) -> Vec<SchoolOutcome> {
        let n = self.schools.len();
        let slots: Vec<Mutex<Option<SchoolOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..school_threads.clamp(1, n) {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let outcome = self.attack_school(idx, workers, seed);
                    *slots[idx].lock().expect("slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot").expect("every school attacked"))
            .collect()
    }

    /// Fold per-school outcomes into the city-wide exposure aggregate.
    pub fn exposure(outcomes: &[SchoolOutcome]) -> MetroExposure {
        MetroExposure {
            schools: outcomes.len(),
            students_total: outcomes.iter().map(|o| o.roster).sum(),
            students_found: outcomes.iter().map(|o| o.eval.found).sum(),
            correct_year: outcomes.iter().map(|o| o.eval.correct_year).sum(),
            requests_total: outcomes.iter().map(|o| o.requests).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MetroConfig {
        MetroConfig {
            schools: 2,
            students_per_school: 60,
            alumni_per_school: 30,
            parents_per_school: 10,
            pool_users: 500,
            ..MetroConfig::tiny()
        }
    }

    #[test]
    fn city_attack_is_worker_and_schedule_invariant() {
        let a = MetroLab::facebook(&small_cfg(), 2).city_attack(1, 1, 7);
        let b = MetroLab::facebook(&small_cfg(), 1).city_attack(4, 2, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest(), y.digest(), "school {:?} drifted", x.school);
            assert_eq!(x.guessed, y.guessed);
        }
    }

    #[test]
    fn city_attack_finds_students_in_every_school() {
        let lab = MetroLab::facebook(&small_cfg(), 2);
        let outcomes = lab.city_attack(2, 2, 7);
        for o in &outcomes {
            assert!(o.seeds > 0, "no seeds for {:?}", o.school);
            assert!(o.eval.found > 0, "nothing found for {:?}", o.school);
            assert!(o.eval.found <= o.roster);
        }
        let exposure = MetroLab::exposure(&outcomes);
        assert_eq!(exposure.schools, 2);
        assert_eq!(exposure.students_total, 120);
        assert!(exposure.pct_found() > 10.0);
    }
}
