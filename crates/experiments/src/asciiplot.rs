//! Minimal ASCII scatter/line plots for the figure experiments.

/// One plotted series.
#[derive(Clone, Debug)]
pub struct PlotSeries {
    pub label: String,
    pub marker: char,
    pub points: Vec<(f64, f64)>,
}

/// Plot configuration.
#[derive(Clone, Debug)]
pub struct Plot {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub width: usize,
    pub height: usize,
    pub log_y: bool,
    pub series: Vec<PlotSeries>,
}

impl Plot {
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Plot {
        Plot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width: 64,
            height: 18,
            log_y: false,
            series: Vec::new(),
        }
    }

    pub fn log_y(mut self) -> Plot {
        self.log_y = true;
        self
    }

    pub fn series(mut self, label: &str, marker: char, points: Vec<(f64, f64)>) -> Plot {
        self.series.push(PlotSeries { label: label.to_string(), marker, points });
        self
    }

    fn y_transform(&self, y: f64) -> f64 {
        if self.log_y {
            y.max(1e-9).log10()
        } else {
            y
        }
    }

    /// Render the plot as text.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        if pts.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            let ty = self.y_transform(y);
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(ty);
            y_max = y_max.max(ty);
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let ty = self.y_transform(y);
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((ty - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = s.marker;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let y_hi = if self.log_y { 10f64.powf(y_max) } else { y_max };
        let y_lo = if self.log_y { 10f64.powf(y_min) } else { y_min };
        out.push_str(&format!(
            "{} (top={y_hi:.0}, bottom={y_lo:.0}{})\n",
            self.y_label,
            if self.log_y { ", log scale" } else { "" }
        ));
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(" {}: {x_min:.0} .. {x_max:.0}   ", self.x_label));
        for s in &self.series {
            out.push_str(&format!("[{}] {}  ", s.marker, s.label));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_for_each_series() {
        let plot = Plot::new("demo", "t", "%")
            .series("up", '*', vec![(0.0, 0.0), (10.0, 100.0)])
            .series("down", 'o', vec![(0.0, 100.0), (10.0, 0.0)]);
        let text = plot.render();
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("[*] up"));
        assert!(text.contains("demo"));
    }

    #[test]
    fn log_scale_handles_wide_ranges() {
        let plot = Plot::new("log", "x", "fp").log_y().series(
            "s",
            '#',
            vec![(1.0, 10.0), (2.0, 10_000.0)],
        );
        let text = plot.render();
        assert!(text.contains("log scale"));
    }

    #[test]
    fn empty_plot_does_not_panic() {
        let text = Plot::new("empty", "x", "y").render();
        assert!(text.contains("no data"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let text = Plot::new("p", "x", "y").series("s", '*', vec![(5.0, 5.0)]).render();
        assert!(text.contains('*'));
    }
}
