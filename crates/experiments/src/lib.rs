//! # hsp-experiments — regenerating every table and figure
//!
//! One runner per table/figure of the paper (see DESIGN.md §3 for the
//! index), plus extension experiments (Jaccard hidden-link inference)
//! and ablations (lying rate, ε, filter rules, account count). The
//! `experiments` binary drives them; `hsp-bench` reuses the same
//! runners under Criterion.

pub mod asciiplot;
pub mod crash_lab;
pub mod ctx;
pub mod exp_extra;
pub mod exp_figures;
pub mod exp_tables;
pub mod exp_threats;
pub mod metro_lab;
pub mod report;
pub mod runner;
pub mod tablefmt;
pub mod trace_audit;

pub use ctx::Ctx;
pub use report::ExperimentReport;
pub use runner::{full_attack, AttackRun, Lab};
pub use trace_audit::{audit_trace, TraceAudit};

/// All experiment ids in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "summary",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "jaccard",
    "interaction",
    "birthyear",
    "threats",
    "gplus",
    "countermeasures",
    "verify-search",
    "ablation-lying",
    "ablation-epsilon",
    "ablation-filters",
    "ablation-accounts",
    "arms-race",
    "freshness",
    "metro",
    "crash-recovery",
];

/// Run one experiment by id. The whole run is timed into the context
/// registry under `experiment_us{experiment="<id>"}`.
pub fn run_experiment(ctx: &mut Ctx, id: &str) -> Option<ExperimentReport> {
    let _span =
        hsp_obs::SpanGuard::new(ctx.obs.histogram_with("experiment_us", &[("experiment", id)]));
    Some(match id {
        "summary" => exp_extra::summary(ctx),
        "table1" => exp_tables::table1(ctx),
        "table2" => exp_tables::table2(ctx),
        "table3" => exp_tables::table3(ctx),
        "table4" => exp_tables::table4(ctx),
        "table5" => exp_tables::table5(ctx),
        "table6" => exp_tables::table6(ctx),
        "fig1" => exp_figures::fig1(ctx),
        "fig2" => exp_figures::fig2(ctx),
        "fig3" => exp_figures::fig3(ctx),
        "fig4" => exp_figures::fig4(ctx),
        "jaccard" => exp_extra::jaccard(ctx),
        "threats" => exp_threats::threats(ctx),
        "verify-search" => exp_extra::verify_search(ctx),
        "interaction" => exp_extra::interaction(ctx),
        "birthyear" => exp_extra::birthyear(ctx),
        "gplus" => exp_threats::gplus_attack(ctx),
        "countermeasures" => exp_threats::countermeasures(ctx),
        "ablation-lying" => exp_extra::ablation_lying(ctx),
        "ablation-epsilon" => exp_extra::ablation_epsilon(ctx),
        "ablation-filters" => exp_extra::ablation_filters(ctx),
        "ablation-accounts" => exp_extra::ablation_accounts(ctx),
        "arms-race" => exp_extra::arms_race(ctx),
        "freshness" => exp_extra::freshness(ctx),
        "metro" => exp_extra::metro(ctx),
        "crash-recovery" => exp_extra::crash_recovery(ctx),
        _ => return None,
    })
}
