//! Extension experiments: the §2 threat chain, the Google+ variant of
//! the attack (Appendix A), and the §8 countermeasure design space.

use crate::ctx::Ctx;
use crate::report::ExperimentReport;
use crate::runner::{full_attack, Lab};
use crate::tablefmt::{f1, Table};
use hsp_core::{construct_profile, evaluate, recover_friend_lists, GroundTruth};
use hsp_policy::{
    AgeConsistencySearchPolicy, FacebookPolicy, GooglePlusPolicy, Policy,
    YoungAdultFriendListPolicy,
};
use hsp_threats::{exposure_of, link_students, run_campaign, ExposureDistribution, VoterRoll};
use serde_json::json;
use std::sync::Arc;

/// §2 threat chain on HS1: record linking, phishing channel, exposure.
pub fn threats(ctx: &mut Ctx) -> ExperimentReport {
    let sr = ctx.school_mut("HS1");
    let t = sr.run.config.school_size_estimate as usize;
    let guessed = sr.run.enhanced.guessed_students(t);
    let rec = recover_friend_lists(sr.run.access.as_mut(), &guessed).expect("reverse lookup");

    // Build the broker's deliverable for every guessed user the attack
    // classified (attackers don't know who is a true student; evaluation
    // below separates them).
    let mut profiles = Vec::new();
    let mut link_inputs = Vec::new();
    let mut true_students = 0usize;
    for &u in &guessed {
        let Some(year) = sr.run.enhanced.inferred_year(u, &sr.run.config) else {
            continue;
        };
        let scraped = sr.run.access.profile(u).expect("profile");
        let friends = rec.friends_of(u).to_vec();
        // The attacker reads the last name off the scraped page.
        let last_name = scraped.name.split_whitespace().last().unwrap_or_default().to_string();
        if sr.lab.scenario.is_student(u) {
            true_students += 1;
        }
        profiles.push(construct_profile(
            &scraped,
            u,
            sr.lab.scenario.school,
            sr.lab.scenario.home_city,
            year,
            friends.clone(),
        ));
        link_inputs.push((u, last_name, sr.lab.scenario.home_city, friends));
    }

    // --- voter-record linking -------------------------------------------
    let roll = VoterRoll::build(&sr.lab.scenario.network, sr.lab.scenario.config.seed);
    let (links, stats) = link_students(&sr.lab.scenario.network, &roll, link_inputs);

    // --- phishing channel --------------------------------------------------
    let school_name = sr.lab.scenario.network.school(sr.lab.scenario.school).name.to_string();
    let names: std::collections::HashMap<_, _> =
        sr.lab.scenario.network.users().map(|u| (u.id, u.profile.full_name())).collect();
    let campaign =
        run_campaign(sr.run.access.as_mut(), &profiles, &school_name, |f| names.get(&f).cloned())
            .expect("campaign");

    // --- exposure ---------------------------------------------------------
    let mut dist = ExposureDistribution::default();
    for (p, l) in profiles.iter().zip(&links) {
        dist.add(&exposure_of(p, Some(l)));
    }

    let mut table = Table::new(&["threat metric", "value"]);
    table.row(&["guessed users profiled".into(), profiles.len().to_string()]);
    table.row(&["  of which true students".into(), true_students.to_string()]);
    table.row(&["voter roll size".into(), roll.len().to_string()]);
    table.row(&[
        "addresses resolved".into(),
        format!("{} ({:.0}% of profiled)", stats.resolved_total, stats.pct_resolved()),
    ]);
    table.row(&["  via friend-list confirmation".into(), stats.friend_confirmed.to_string()]);
    table.row(&["  via unique household".into(), stats.unique_household.to_string()]);
    table.row(&[
        "  ambiguous / no candidates".into(),
        format!("{} / {}", stats.ambiguous, stats.no_candidates),
    ]);
    table.row(&["address precision".into(), format!("{:.0}%", stats.precision())]);
    table.row(&[
        "phishing lures delivered".into(),
        format!(
            "{} of {} ({:.0}%)",
            campaign.delivered,
            campaign.targets,
            campaign.pct_delivered()
        ),
    ]);
    table.row(&[
        "lures personalized with a friend's name".into(),
        campaign.personalized_with_friend.to_string(),
    ]);
    table.row(&[
        "exposure >= 4 of 5 components".into(),
        format!("{} of {}", dist.at_least(4), dist.total()),
    ]);
    table.row(&["exposure distribution 0..5".into(), format!("{:?}", dist.counts)]);
    ExperimentReport::new(
        "threats",
        "§2 consequential threats quantified (HS1): record linking, phishing, exposure",
        table.render(),
        json!({
            "profiled": profiles.len(),
            "true_students": true_students,
            "link_stats": stats,
            "campaign": campaign,
            "exposure_counts": dist.counts,
        }),
    )
}

/// Appendix A: the same attack against the Google+ policy engine.
pub fn gplus_attack(ctx: &mut Ctx) -> ExperimentReport {
    let scenario = ctx.school("HS1").lab.scenario.clone();
    let truth = GroundTruth::from_scenario(&scenario);
    let mut table = Table::new(&[
        "platform",
        "core",
        "candidates",
        "% found @ t=size",
        "% FP",
        "reg. minors leaking non-minimal pages",
    ]);
    let mut rows = Vec::new();
    for (label, policy) in [
        ("facebook", Arc::new(FacebookPolicy::new()) as Arc<dyn Policy>),
        ("googleplus", Arc::new(GooglePlusPolicy::new())),
    ] {
        let minors_leaking = scenario
            .registered_minor_students()
            .into_iter()
            .filter(|&u| !policy.stranger_view(&scenario.network, u).is_minimal())
            .count();
        let mut lab = Lab::from_scenario(scenario.clone(), policy);
        let run = full_attack(&mut lab, ctx.tcp);
        let t = run.config.school_size_estimate as usize;
        let guessed = run.enhanced.guessed_students(t);
        let point = evaluate(t, &guessed, |u| run.enhanced.inferred_year(u, &run.config), &truth);
        table.row(&[
            label.into(),
            run.enhanced.extended_core.len().to_string(),
            run.discovery.candidate_count().to_string(),
            f1(point.pct_found(truth.len())),
            f1(point.pct_false_positives()),
            minors_leaking.to_string(),
        ]);
        rows.push(json!({
            "platform": label,
            "core": run.enhanced.extended_core.len(),
            "candidates": run.discovery.candidate_count(),
            "pct_found": point.pct_found(truth.len()),
            "pct_fp": point.pct_false_positives(),
            "minors_leaking": minors_leaking,
        }));
    }
    // The circles-native crawl: cores' outgoing+incoming circle lists
    // instead of symmetric friend lists (Appendix A's asymmetric links).
    {
        let mut lab = Lab::from_scenario(scenario.clone(), Arc::new(GooglePlusPolicy::new()));
        let mut access = lab.crawler_mode(2, "gpc", ctx.tcp);
        let config = lab.attack_config();
        let d = hsp_core::run_basic_circles(access.as_mut(), &config).expect("circles attack");
        let t = config.school_size_estimate as usize;
        let guessed = d.guessed_students(t);
        let point = evaluate(t, &guessed, |u| d.inferred_year(u), &truth);
        table.row(&[
            "googleplus (circles crawl)".into(),
            d.core.len().to_string(),
            d.candidate_count().to_string(),
            f1(point.pct_found(truth.len())),
            f1(point.pct_false_positives()),
            "-".into(),
        ]);
        rows.push(json!({
            "platform": "googleplus-circles",
            "core": d.core.len(),
            "candidates": d.candidate_count(),
            "pct_found": point.pct_found(truth.len()),
            "pct_fp": point.pct_false_positives(),
        }));
    }
    let note = "Same world, two policy engines. G+ lacks Facebook's hard cap, so any \
                registered minor with permissive settings leaks a non-minimal page; the \
                search-exclusion rule is the same, so the attack itself performs \
                comparably (the paper's Appendix A observation).\n";
    ExperimentReport::new(
        "gplus",
        "Appendix A: the attack against the Google+ policy engine",
        format!("{note}{}", table.render()),
        json!({ "rows": rows }),
    )
}

/// §8 design space: four countermeasures on the same HS1 world.
pub fn countermeasures(ctx: &mut Ctx) -> ExperimentReport {
    let scenario = ctx.school("HS1").lab.scenario.clone();
    let truth = GroundTruth::from_scenario(&scenario);
    let fb = || Arc::new(FacebookPolicy::new()) as Arc<dyn Policy>;
    let variants: Vec<(&str, Arc<dyn Policy>)> = vec![
        ("status quo", fb()),
        ("disable reverse lookup (§8)", Arc::new(FacebookPolicy::without_reverse_lookup())),
        (
            "screen self-identified minors from search",
            Arc::new(AgeConsistencySearchPolicy::new(fb())),
        ),
        (
            "hide friend lists of registered <21s",
            Arc::new(YoungAdultFriendListPolicy::new(fb(), 21)),
        ),
        (
            "both: screening + <21 friend-list cap",
            Arc::new(YoungAdultFriendListPolicy::new(
                Arc::new(AgeConsistencySearchPolicy::new(fb())),
                21,
            )),
        ),
    ];
    let mut table =
        Table::new(&["countermeasure", "core", "candidates", "% found @ t=size", "% FP"]);
    let mut rows = Vec::new();
    for (label, policy) in variants {
        let mut lab = Lab::from_scenario(scenario.clone(), policy);
        let run = full_attack(&mut lab, ctx.tcp);
        let t = run.config.school_size_estimate as usize;
        let guessed = run.enhanced.guessed_students(t);
        let point = evaluate(t, &guessed, |u| run.enhanced.inferred_year(u, &run.config), &truth);
        table.row(&[
            label.into(),
            run.enhanced.extended_core.len().to_string(),
            run.discovery.candidate_count().to_string(),
            f1(point.pct_found(truth.len())),
            f1(point.pct_false_positives()),
        ]);
        rows.push(json!({
            "countermeasure": label,
            "core": run.enhanced.extended_core.len(),
            "candidates": run.discovery.candidate_count(),
            "pct_found": point.pct_found(truth.len()),
            "pct_fp": point.pct_false_positives(),
        }));
    }
    ExperimentReport::new(
        "countermeasures",
        "§8 extension: a small countermeasure design space (HS1 world)",
        table.render(),
        json!({ "rows": rows }),
    )
}
