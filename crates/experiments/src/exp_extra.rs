//! Extension experiments: hidden-link inference, ablations, summaries,
//! and the defender arms race.

use crate::ctx::Ctx;
use crate::report::ExperimentReport;
use crate::runner::{full_attack, full_attack_with, Lab};
use crate::tablefmt::{f1, Table};
use hsp_core::{
    evaluate, evaluate_links, recover_friend_lists, run_basic, run_enhanced, EnhanceOptions,
};
use serde_json::json;

/// §6.1 extension: Jaccard inference of hidden friendships between
/// registered minors, evaluated against ground truth.
pub fn jaccard(ctx: &mut Ctx) -> ExperimentReport {
    let sr = ctx.school_mut("HS1");
    let t = sr.run.config.school_size_estimate as usize;
    let guessed = sr.run.enhanced.guessed_students(t);
    let rec = recover_friend_lists(sr.run.access.as_mut(), &guessed).expect("reverse lookup");
    let network = &sr.lab.scenario.network;
    let mut table = Table::new(&[
        "jaccard threshold",
        "predicted links",
        "true positives",
        "precision",
        "recall",
        "actual hidden links",
    ]);
    let mut points = Vec::new();
    for threshold in [0.02, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let eval = evaluate_links(&rec, threshold, |a, b| network.are_friends(a, b));
        table.row(&[
            format!("{threshold:.2}"),
            eval.predicted.to_string(),
            eval.true_positives.to_string(),
            f1(eval.precision * 100.0),
            f1(eval.recall * 100.0),
            eval.actual_links.to_string(),
        ]);
        points.push(serde_json::to_value(eval).expect("serializable"));
    }
    let text = format!(
        "Hidden-list users in guessed set: {} (avg recovered list {:.1} friends)\n{}",
        rec.recovered.len(),
        rec.avg_recovered_len(),
        table.render()
    );
    ExperimentReport::new(
        "jaccard",
        "Inferring hidden friendships between registered minors (§6.1 extension)",
        text,
        json!({ "hidden_users": rec.recovered.len(), "points": points }),
    )
}

/// Ablation A: how the attack degrades as fewer children lie about
/// their age — the causal core of the paper's thesis.
pub fn ablation_lying(ctx: &mut Ctx) -> ExperimentReport {
    let mut table = Table::new(&[
        "p(lie when underage)",
        "minors registered as adults",
        "core users",
        "% students found @ t=size",
    ]);
    let mut points = Vec::new();
    for p_lie in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
        // Average over three generated worlds per point: a single small
        // world's core draw is noisy.
        let mut lying_sum = 0usize;
        let mut core_sum = 0usize;
        let mut pct_sum = 0.0;
        const REPS: u64 = 3;
        for rep in 0..REPS {
            let mut cfg = Ctx::config_for("HS1");
            cfg.name = format!("HS1-lie{p_lie}-r{rep}");
            cfg.seed = cfg.seed.wrapping_add(rep.wrapping_mul(0x9e37_79b9));
            cfg.lying.p_lie_when_underage = p_lie;
            let mut lab = Lab::facebook(&cfg);
            let run = full_attack(&mut lab, ctx.tcp);
            let truth = lab.ground_truth();
            let t = run.config.school_size_estimate as usize;
            let guessed = run.enhanced.guessed_students(t);
            let point =
                evaluate(t, &guessed, |u| run.enhanced.inferred_year(u, &run.config), &truth);
            lying_sum += lab.scenario.lying_minor_students().len();
            core_sum += run.enhanced.extended_core.len();
            pct_sum += point.pct_found(truth.len());
        }
        let reps = REPS as f64;
        table.row(&[
            format!("{p_lie:.2}"),
            f1(lying_sum as f64 / reps),
            f1(core_sum as f64 / reps),
            f1(pct_sum / reps),
        ]);
        points.push(json!({
            "p_lie": p_lie,
            "lying_minors_mean": lying_sum as f64 / reps,
            "extended_core_mean": core_sum as f64 / reps,
            "pct_found_mean": pct_sum / reps,
        }));
    }
    ExperimentReport::new(
        "ablation-lying",
        "Ablation: attack success vs the age-lying rate (HS1 world)",
        table.render(),
        json!({ "points": points }),
    )
}

/// Ablation B: the enhanced pass's ε.
pub fn ablation_epsilon(ctx: &mut Ctx) -> ExperimentReport {
    let truth = ctx.school("HS1").lab.ground_truth();
    let mut table = Table::new(&["epsilon", "profiles fetched", "ext. core", "% found @ t=400"]);
    let mut points = Vec::new();
    for eps in [0.0, 0.5, 1.0, 2.0] {
        let sr = ctx.school_mut("HS1");
        let mut config = sr.run.config.clone();
        config.epsilon = eps;
        let mut discovery = sr.run.discovery.clone();
        discovery.config = config.clone();
        let before = sr.run.access.effort();
        let enhanced = run_enhanced(
            sr.run.access.as_mut(),
            &discovery,
            &EnhanceOptions {
                t: 400,
                filtering: true,
                enhance: true,
                school_city: sr.lab.scenario.home_city,
            },
        )
        .expect("enhanced");
        let fetched = sr.run.access.effort().since(&before).profile_requests;
        let guessed = enhanced.guessed_students(400);
        let point = evaluate(400, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
        table.row(&[
            format!("{eps:.1}"),
            fetched.to_string(),
            enhanced.extended_core.len().to_string(),
            f1(point.pct_found(truth.len())),
        ]);
        points.push(json!({
            "epsilon": eps,
            "new_profile_fetches": fetched,
            "extended_core": enhanced.extended_core.len(),
            "pct_found": point.pct_found(truth.len()),
        }));
    }
    ExperimentReport::new(
        "ablation-epsilon",
        "Ablation: enhanced-methodology ε (HS1, t=400; fetches are incremental over cache)",
        table.render(),
        json!({ "points": points }),
    )
}

/// Ablation C: which §4.4 filter rules fire.
pub fn ablation_filters(ctx: &mut Ctx) -> ExperimentReport {
    let sr = ctx.school_mut("HS1");
    let t = sr.run.config.school_size_estimate as usize;
    let enhanced = run_enhanced(
        sr.run.access.as_mut(),
        &sr.run.discovery,
        &EnhanceOptions {
            t,
            filtering: true,
            enhance: true,
            school_city: sr.lab.scenario.home_city,
        },
    )
    .expect("enhanced");
    let mut counts = std::collections::BTreeMap::new();
    let mut former_hits = 0usize;
    for (u, rule) in &enhanced.filtered_out {
        *counts.entry(format!("{rule:?}")).or_insert(0usize) += 1;
        if matches!(
            sr.lab.scenario.network.user(*u).role,
            hsp_graph::Role::FormerStudent { .. } | hsp_graph::Role::Alumnus { .. }
        ) {
            former_hits += 1;
        }
    }
    let mut table = Table::new(&["filter rule", "candidates removed"]);
    for (rule, n) in &counts {
        table.row(&[rule.clone(), n.to_string()]);
    }
    let text = format!(
        "{}\nOf {} filtered candidates, {} were truly former students/alumni (ground truth).\n",
        table.render(),
        enhanced.filtered_out.len(),
        former_hits
    );
    ExperimentReport::new(
        "ablation-filters",
        "Ablation: §4.4 filter-rule contributions (HS1)",
        text,
        json!({ "counts": counts, "true_former": former_hits, "total": enhanced.filtered_out.len() }),
    )
}

/// Ablation D: number of attacker accounts vs seed/core yield (HS2).
pub fn ablation_accounts(ctx: &mut Ctx) -> ExperimentReport {
    let mut table = Table::new(&["accounts", "seeds", "core users", "candidates"]);
    let mut points = Vec::new();
    for accounts in [1usize, 2, 4, 8] {
        let mut lab = Lab::facebook(&Ctx::config_for("HS2"));
        let mut access = lab.crawler_mode(accounts, "acct", ctx.tcp);
        let config = lab.attack_config();
        let discovery = hsp_core::run_basic(access.as_mut(), &config).expect("basic");
        table.row(&[
            accounts.to_string(),
            discovery.seeds.len().to_string(),
            discovery.core.len().to_string(),
            discovery.candidate_count().to_string(),
        ]);
        points.push(json!({
            "accounts": accounts,
            "seeds": discovery.seeds.len(),
            "core": discovery.core.len(),
            "candidates": discovery.candidate_count(),
        }));
    }
    ExperimentReport::new(
        "ablation-accounts",
        "Ablation: fake-account count vs seed/core yield (HS2)",
        table.render(),
        json!({ "points": points }),
    )
}

/// §4.3 extension: interaction-weighted ranking (wall-post evidence).
pub fn interaction(ctx: &mut Ctx) -> ExperimentReport {
    let truth = ctx.school("HS1").lab.ground_truth();
    let sr = ctx.school_mut("HS1");
    let config = sr.run.config.clone();
    let core = sr.run.enhanced.extended_core.clone();
    let mut table =
        Table::new(&["ranking", "% found @ t=300", "% found @ t=size", "% correct year"]);
    let mut rows = Vec::new();
    for (label, bonus) in
        [("plain (paper)", 0.0), ("wall-post bonus 1.0", 1.0), ("wall-post bonus 3.0", 3.0)]
    {
        let ranked = hsp_core::rank_candidates_weighted(
            sr.run.access.as_mut(),
            &config,
            &core,
            &hsp_core::InteractionWeights { wall_post_bonus: bonus },
        )
        .expect("weighted ranking");
        let eval_at = |t: usize| {
            let mut guessed: Vec<hsp_graph::UserId> = ranked.iter().take(t).map(|c| c.id).collect();
            guessed.extend(core.iter().map(|c| c.id));
            guessed.sort_unstable();
            guessed.dedup();
            evaluate(
                t,
                &guessed,
                |u| ranked.iter().find(|c| c.id == u).map(|c| c.inferred_grad_year(&config)),
                &truth,
            )
        };
        let p300 = eval_at(300);
        let psize = eval_at(config.school_size_estimate as usize);
        table.row(&[
            label.into(),
            f1(p300.pct_found(truth.len())),
            f1(psize.pct_found(truth.len())),
            f1(psize.pct_correct_year()),
        ]);
        rows.push(json!({
            "ranking": label,
            "pct_found_300": p300.pct_found(truth.len()),
            "pct_found_size": psize.pct_found(truth.len()),
            "pct_correct_year": psize.pct_correct_year(),
        }));
    }
    ExperimentReport::new(
        "interaction",
        "§4.3 extension: interaction-weighted ranking via visible wall posters (HS1)",
        table.render(),
        json!({ "rows": rows }),
    )
}

/// §4.1's birth-year estimation ("the third party can also estimate
/// birth year from the graduation year"), scored against ground truth.
pub fn birthyear(ctx: &mut Ctx) -> ExperimentReport {
    let sr = ctx.school_mut("HS1");
    let t = sr.run.config.school_size_estimate as usize;
    let guessed = sr.run.enhanced.guessed_students(t);
    let net = &sr.lab.scenario.network;
    let mut exact = 0usize;
    let mut within_one = 0usize;
    let mut n = 0usize;
    for &u in &guessed {
        if !sr.lab.scenario.is_student(u) {
            continue;
        }
        let Some(year) = sr.run.enhanced.inferred_year(u, &sr.run.config) else {
            continue;
        };
        let est = year - 18;
        let actual = net.user(u).true_birth_date.year();
        n += 1;
        if est == actual {
            exact += 1;
        }
        if (est - actual).abs() <= 1 {
            within_one += 1;
        }
    }
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["students with estimated birth year".into(), n.to_string()]);
    table.row(&[
        "exact year".into(),
        format!("{} ({:.0}%)", exact, 100.0 * exact as f64 / n.max(1) as f64),
    ]);
    table.row(&[
        "within +/- 1 year".into(),
        format!("{} ({:.0}%)", within_one, 100.0 * within_one as f64 / n.max(1) as f64),
    ]);
    ExperimentReport::new(
        "birthyear",
        "§4.1: accuracy of birth-year estimation from inferred graduation year (HS1)",
        table.render(),
        json!({ "n": n, "exact": exact, "within_one": within_one }),
    )
}

/// §3.1's verification experiment: using the full ground truth for HS1,
/// confirm that neither the Find-Friends portal nor graph search ever
/// returns a registered minor, and characterize who *is* returned
/// ("the vast majority of the results being alumni of the high school").
pub fn verify_search(ctx: &mut Ctx) -> ExperimentReport {
    let sr = ctx.school_mut("HS1");
    let school = sr.lab.scenario.school;
    // Use many accounts so the union approaches the full searchable pool.
    let mut access = sr.lab.crawler(8, "verify");
    let seeds = access.collect_seeds(school).expect("seeds");
    let net = &sr.lab.scenario.network;
    let today = net.today;
    let mut registered_minors = 0usize;
    let mut alumni = 0usize;
    let mut current_students = 0usize;
    let mut formers = 0usize;
    let mut others = 0usize;
    for &u in &seeds {
        if net.user(u).is_registered_minor(today) {
            registered_minors += 1;
        }
        match net.user(u).role {
            hsp_graph::Role::Alumnus { .. } => alumni += 1,
            hsp_graph::Role::CurrentStudent { .. } => current_students += 1,
            hsp_graph::Role::FormerStudent { .. } => formers += 1,
            _ => others += 1,
        }
    }
    // Graph-search composition (§3.1: "current students at HS1 who live
    // in city1"): also must return zero registered minors.
    let gs_minors = {
        let platform = &sr.lab.platform;
        let ids = {
            use hsp_http::{Exchange, Request};
            let handler = platform.into_handler();
            let mut ex = hsp_http::DirectExchange::new(handler);
            ex.exchange(Request::post_form("/signup", &[("user", "gsv"), ("pass", "x")])).unwrap();
            ex.exchange(Request::post_form("/login", &[("user", "gsv"), ("pass", "x")])).unwrap();
            let resp = ex
                .exchange(Request::get(format!(
                    "/graph-search?school={school}&current=1&city={}",
                    sr.lab.scenario.home_city
                )))
                .unwrap();
            hsp_crawler::parse_listing(&resp.body_string()).0
        };
        ids.iter().filter(|&&u| net.user(u).is_registered_minor(today)).count()
    };
    assert_eq!(gs_minors, 0, "graph search returned a registered minor");

    let mut table = Table::new(&["category", "count", "% of results"]);
    let pct_of = |n: usize| f1(100.0 * n as f64 / seeds.len().max(1) as f64);
    table.row(&[
        "search results (8-account union)".into(),
        seeds.len().to_string(),
        "100.0".into(),
    ]);
    table.row(&[
        "registered minors".into(),
        registered_minors.to_string(),
        pct_of(registered_minors),
    ]);
    table.row(&["alumni".into(), alumni.to_string(), pct_of(alumni)]);
    table.row(&[
        "current students (all registered adults)".into(),
        current_students.to_string(),
        pct_of(current_students),
    ]);
    table.row(&["former students".into(), formers.to_string(), pct_of(formers)]);
    table.row(&["others".into(), others.to_string(), pct_of(others)]);
    assert_eq!(registered_minors, 0, "search returned a registered minor");
    let note = "Paper §3.1: \"Facebook does not return any registered minors when a \
                stranger searches with the Find Friends Portal\" — verified against \
                the full HS1 ground truth; and \"the vast majority of the results \
                [are] alumni\".\n";
    ExperimentReport::new(
        "verify-search",
        "§3.1 verification: school search never returns registered minors",
        format!("{note}{}", table.render()),
        json!({
            "results": seeds.len(),
            "registered_minors": registered_minors,
            "alumni": alumni,
            "current_students": current_students,
            "former_students": formers,
            "others": others,
        }),
    )
}

/// Defender arms race, in miniature: sweep the sybil detector's
/// strength tiers against both the naive and the adaptive crawler on
/// the TINY world and report the detection-vs-cost frontier. (The
/// HS1-scale sweep with hard gates lives in `examples/arms_race.rs` /
/// `scripts/arms_race.sh`, feeding `BENCH_defense.json`.)
pub fn arms_race(ctx: &mut Ctx) -> ExperimentReport {
    use hsp_crawler::AdaptiveStrategy;
    use hsp_platform::{DefenseConfig, DetectorStrength};
    // Detector state is per platform, so every cell gets a fresh lab;
    // the shared Ctx caches don't apply here (and TCP mode wouldn't
    // change the in-process request streams).
    let _ = ctx;
    const SEED: u64 = 0x9d5f_2013;
    // Denominator floor for the detection rate: sessions that lived at
    // least as long as the weakest tier needs to form an opinion.
    const SESSION_FLOOR: u64 = 48;
    let strengths = [
        DetectorStrength::Off,
        DetectorStrength::Low,
        DetectorStrength::Medium,
        DetectorStrength::High,
    ];
    let mut table = Table::new(&[
        "detector",
        "crawler",
        "completed",
        "detected",
        "sessions",
        "requests",
        "captchas",
        "decoys",
        "virt-min",
        "found",
    ]);
    let mut points = Vec::new();
    for strength in strengths {
        for (mode, adaptive) in
            [("naive", None), ("adaptive", Some(AdaptiveStrategy::seeded(SEED)))]
        {
            let lab = Lab::facebook_defended(
                &Ctx::config_for("TINY"),
                DefenseConfig { strength, ..DefenseConfig::default() },
            );
            let mut access = lab.arms_race_crawler(2, "arms", SEED, adaptive);
            let config = lab.attack_config();
            let t = config.school_size_estimate as usize;
            let outcome = run_basic(access.as_mut(), &config).and_then(|discovery| {
                let enhanced = run_enhanced(
                    access.as_mut(),
                    &discovery,
                    &EnhanceOptions {
                        t,
                        filtering: true,
                        enhance: true,
                        school_city: lab.scenario.home_city,
                    },
                )?;
                let truth = lab.ground_truth();
                Ok(evaluate(
                    t,
                    &enhanced.guessed_students(t),
                    |u| enhanced.inferred_year(u, &config),
                    &truth,
                ))
            });
            let effort = access.effort();
            let (eligible, flagged) = lab.platform.defense.frontier_counts(SESSION_FLOOR);
            let detection_pm = (flagged * 1_000).checked_div(eligible).unwrap_or(0);
            let virt_min = lab.platform.clock.now_ms() as f64 / 60_000.0;
            let found = outcome.as_ref().map(|p| p.found).unwrap_or(0);
            table.row(&[
                strength.label().into(),
                mode.into(),
                if outcome.is_ok() { "yes" } else { "DIED" }.into(),
                format!("{flagged}/{eligible}"),
                format!("{detection_pm}‰"),
                effort.total().to_string(),
                effort.captcha_challenges.to_string(),
                effort.decoy_requests.to_string(),
                format!("{virt_min:.1}"),
                found.to_string(),
            ]);
            points.push(json!({
                "strength": strength.label(),
                "crawler": mode,
                "completed": outcome.is_ok(),
                "sessions_eligible": eligible,
                "sessions_flagged": flagged,
                "detection_pm": detection_pm,
                "total_requests": effort.total(),
                "retries": effort.retry_requests,
                "captcha_challenges": effort.captcha_challenges,
                "captcha_virtual_ms": effort.captcha_virtual_ms,
                "decoy_requests": effort.decoy_requests,
                "virtual_minutes": virt_min,
                "found": found,
            }));
        }
    }
    ExperimentReport::new(
        "arms-race",
        "Sybil-detector strength vs naive/adaptive crawler (TINY world frontier)",
        table.render(),
        json!({ "session_floor": SESSION_FLOOR, "points": points }),
    )
}

/// Live-world freshness frontier: the same attack against a platform
/// that mutates underneath it, swept over churn intensity (the
/// scenario's own [`hsp_synth::ChurnModel`], scaled) and crawl pacing
/// (slower crawls live through more churn). Every cell's trace audit
/// must close — stale re-fetches, tombstones and mutation events all
/// reconcile — and the zero-rate cell must be bit-identical to the
/// frozen-world baseline (same trace digest, same effort, same result).
pub fn freshness(ctx: &mut Ctx) -> ExperimentReport {
    use crate::trace_audit::audit_trace;
    use hsp_crawler::Politeness;
    // Fresh labs per cell (mutation engines are per platform); the
    // shared Ctx caches don't apply.
    let _ = ctx;
    const SEED: u64 = 0x11FE_2013;
    let cfg = Ctx::config_for("TINY");
    let mut table = Table::new(&[
        "churn",
        "pace ms",
        "mutations",
        "tombstoned",
        "stale refetch",
        "virt-min",
        "requests",
        "found",
    ]);
    let mut points = Vec::new();
    for (pace_label, pace_ms) in [("paper", 1_500u64), ("slow", 6_000u64)] {
        let pace = Politeness { sleep_ms_between_requests: pace_ms, ..Politeness::default() };
        // Frozen-world baseline for this pacing: the yardstick the
        // zero-rate live cell must reproduce byte-for-byte.
        let (frozen_digest, frozen_effort, frozen_found) = {
            let lab = Lab::facebook(&cfg);
            lab.obs.enable_tracing(16_384);
            let run = full_attack_with(&lab, lab.paced_crawler(2, "fresh", SEED, pace));
            let audit = audit_trace(&lab.obs, &run.effort_total);
            assert!(audit.closed(), "frozen baseline audit: {:#?}", audit.unexplained);
            let found = eval_found(&lab, &run);
            (audit.digest, run.effort_total, found)
        };
        for factor in [0.0f64, 1.0, 4.0, 16.0] {
            let lab = Lab::facebook_live(&cfg, factor);
            lab.obs.enable_tracing(16_384);
            let run = full_attack_with(&lab, lab.paced_crawler(2, "fresh", SEED, pace));
            let audit = audit_trace(&lab.obs, &run.effort_total);
            assert!(
                audit.closed(),
                "freshness cell (x{factor}, {pace_label}) audit: {:#?}",
                audit.unexplained
            );
            let found = eval_found(&lab, &run);
            if factor == 0.0 {
                // Zero churn ⇒ the live engine is a strict no-op.
                assert_eq!(audit.digest, frozen_digest, "zero-rate trace digest drifted");
                assert_eq!(run.effort_total, frozen_effort, "zero-rate effort drifted");
                assert_eq!(found, frozen_found, "zero-rate result drifted");
            }
            let applied = lab.platform.mutations.applied_count() as u64;
            let virt_min = lab.platform.clock.now_ms() as f64 / 60_000.0;
            let effort = &run.effort_total;
            table.row(&[
                format!("x{factor:.0}"),
                pace_ms.to_string(),
                applied.to_string(),
                effort.tombstones.to_string(),
                effort.stale_refetch_requests.to_string(),
                format!("{virt_min:.1}"),
                effort.total().to_string(),
                found.to_string(),
            ]);
            points.push(json!({
                "churn_factor": factor,
                "pace_ms": pace_ms,
                "pace": pace_label,
                "mutations_applied": applied,
                "state_digest": format!("{:016x}", lab.platform.mutations.state_digest()),
                "trace_digest": audit.digest,
                "tombstones": effort.tombstones,
                "stale_refetches": effort.stale_refetch_requests,
                "virtual_minutes": virt_min,
                "total_requests": effort.total(),
                "found": found,
                "audit_closed": audit.closed(),
            }));
        }
    }
    ExperimentReport::new(
        "freshness",
        "Live-world freshness: attack accuracy vs churn rate vs crawl pacing (TINY world)",
        table.render(),
        json!({ "points": points }),
    )
}

/// Metro-scale city-wide attack: every school in a shared-city world
/// crawled concurrently through its own [`ParallelCrawler`] accounts,
/// with per-school Table-2/4 analogues and the aggregate exposure. The
/// experiment registry runs the TINY metro config; the ≥1M-user gated
/// run lives in `examples/metro.rs` / `scripts/metro.sh`, feeding
/// `BENCH_metro.json`.
///
/// [`ParallelCrawler`]: hsp_crawler::ParallelCrawler
pub fn metro(ctx: &mut Ctx) -> ExperimentReport {
    use crate::metro_lab::MetroLab;
    use hsp_synth::MetroConfig;
    // Fresh platforms per run (account registries are per platform);
    // the shared Ctx caches don't apply.
    let _ = ctx;
    const SEED: u64 = 0x3e7_a77a;
    let cfg = MetroConfig::tiny();
    let outcomes = MetroLab::facebook(&cfg, 2).city_attack(2, 2, SEED);
    // Same city, same per-school seeds, eight workers per school: every
    // per-school Table 4 must come out bit-identical.
    let eight = MetroLab::facebook(&cfg, 1).city_attack(8, 2, SEED);
    for (a, b) in outcomes.iter().zip(&eight) {
        assert_eq!(a.digest(), b.digest(), "school {:?} not worker-invariant", a.school);
    }
    let mut table = Table::new(&[
        "school",
        "roster",
        "seeds",
        "core",
        "candidates",
        "found",
        "% found",
        "% correct year",
        "requests",
    ]);
    let mut points = Vec::new();
    for o in &outcomes {
        table.row(&[
            format!("{}", o.school),
            o.roster.to_string(),
            o.seeds.to_string(),
            o.core.to_string(),
            o.candidates.to_string(),
            o.eval.found.to_string(),
            f1(o.eval.pct_found(o.roster)),
            f1(o.eval.pct_correct_year()),
            o.requests.to_string(),
        ]);
        points.push(json!({
            "school": format!("{}", o.school),
            "roster": o.roster,
            "seeds": o.seeds,
            "core": o.core,
            "candidates": o.candidates,
            "found": o.eval.found,
            "correct_year": o.eval.correct_year,
            "requests": o.requests,
            "digest": format!("{:016x}", o.digest()),
        }));
    }
    let exposure = MetroLab::exposure(&outcomes);
    let text = format!(
        "{}\nCity-wide exposure: {}/{} students identified ({:.1}%) across {} schools \
         in one concurrent crawl ({} requests). Worker counts 2 and 8 produced \
         bit-identical per-school results.\n",
        table.render(),
        exposure.students_found,
        exposure.students_total,
        exposure.pct_found(),
        exposure.schools,
        exposure.requests_total,
    );
    ExperimentReport::new(
        "metro",
        "Metro-scale city-wide concurrent attack (TINY metro world)",
        text,
        json!({
            "schools": exposure.schools,
            "students_total": exposure.students_total,
            "students_found": exposure.students_found,
            "pct_found": exposure.pct_found(),
            "requests_total": exposure.requests_total,
            "worker_invariant": true,
            "per_school": points,
        }),
    )
}

/// Score one completed run at `t = school size` (students found).
fn eval_found(lab: &Lab, run: &crate::runner::AttackRun) -> u64 {
    let truth = lab.ground_truth();
    let t = run.config.school_size_estimate as usize;
    let point = evaluate(
        t,
        &run.enhanced.guessed_students(t),
        |u| run.enhanced.inferred_year(u, &run.config),
        &truth,
    );
    point.found as u64
}

/// World summaries (sanity panel for the calibration targets).
pub fn summary(ctx: &mut Ctx) -> ExperimentReport {
    let mut text = String::new();
    let mut rows = Vec::new();
    for school in ["HS1", "HS2", "HS3"] {
        let sr = ctx.school(school);
        let s = sr.lab.scenario.summary();
        text.push_str(&format!("{s}\n"));
        rows.push(json!({
            "name": s.name,
            "total_users": s.total_users,
            "students_on_osn": s.students_on_osn,
            "lying_minor_students": s.lying_minor_students,
            "registered_minor_students": s.registered_minor_students,
            "former_students": s.former_students,
            "alumni": s.alumni,
        }));
    }
    ExperimentReport::new("summary", "Generated-world summaries", text, json!({ "worlds": rows }))
}

/// Crash-only attacker: a kill-point sweep over the journaled crawl,
/// each kill resumed against the *same still-running platform* and
/// gated on bit-identical convergence with an uninterrupted run —
/// outcome digest, effort ledger, and trace digest all equal. Kill
/// points are picked as fractions of the uninterrupted journal's
/// committed record count, plus one torn-tail kill (the frame is cut
/// mid-write), so the sweep tracks the world config instead of
/// hard-coding offsets. The process-kill variant (a real child killed
/// with SIGKILL) lives in `examples/crash.rs` / `scripts/crash.sh`,
/// feeding `BENCH_crash.json`.
pub fn crash_recovery(ctx: &mut Ctx) -> ExperimentReport {
    use crate::crash_lab::{baseline, killed_and_resumed};
    use hsp_crawler::{recover, KillPlan};
    // Fresh labs per trial (the trial shares one platform between the
    // killed run and its resume); the shared Ctx caches don't apply.
    let _ = ctx;
    const SEED: u64 = 0xC4A5;
    const WORKERS: usize = 2;
    const CHURN: f64 = 1.0;
    let cfg = Ctx::config_for("TINY");
    let dir = std::env::temp_dir().join("hsp-crash-recovery");
    std::fs::create_dir_all(&dir).expect("crash-recovery tmp dir");

    // Yardsticks: the un-journaled run the digests must converge to,
    // and a journaled-but-uninterrupted run for record count + cost.
    let bare = baseline(&cfg, SEED, WORKERS, CHURN, None);
    let journal_path = dir.join("baseline.journal");
    let journaled = baseline(&cfg, SEED, WORKERS, CHURN, Some(&journal_path));
    assert_eq!(bare.digest, journaled.digest, "journaling changed the outcome");
    assert_eq!(bare.effort, journaled.effort, "journaling changed the effort ledger");
    assert_eq!(bare.trace_digest, journaled.trace_digest, "journaling changed the trace");
    let committed = recover(&journal_path).expect("baseline journal readable").records.len() as u64;
    assert!(committed > 10, "journal too short for a meaningful sweep");

    let mut kills: Vec<(String, KillPlan)> = [0.05f64, 0.25, 0.50, 0.75, 0.95]
        .iter()
        .map(|f| {
            let at = ((committed as f64 * f) as u64).max(3);
            (format!("{:.0}%", f * 100.0), KillPlan::after(at))
        })
        .collect();
    kills.push(("50% torn".to_string(), KillPlan::torn((committed / 2).max(3), 7)));

    let mut table = Table::new(&[
        "kill point",
        "kill after",
        "recovered",
        "discarded",
        "torn B",
        "recovery us",
        "journal KB",
        "requests",
        "found",
        "bit-identical",
    ]);
    let mut points = Vec::new();
    for (label, kill) in kills {
        let path = dir.join(format!("kill-{}.journal", label.replace([' ', '%'], "_")));
        let trial = killed_and_resumed(&cfg, SEED, WORKERS, CHURN, kill, &path);
        assert!(!trial.completed_before_kill, "{label}: kill point never fired");
        assert_eq!(trial.resumes, 1, "{label}: expected exactly one restart");
        assert_eq!(trial.outcome.digest, bare.digest, "{label}: outcome digest drifted");
        assert_eq!(trial.outcome.effort, bare.effort, "{label}: effort ledger drifted");
        assert_eq!(trial.outcome.trace_digest, bare.trace_digest, "{label}: trace digest drifted");
        let identical = trial.outcome.digest == bare.digest
            && trial.outcome.effort == bare.effort
            && trial.outcome.trace_digest == bare.trace_digest;
        table.row(&[
            label.clone(),
            trial.kill_after.to_string(),
            trial.recovered_records.to_string(),
            trial.discarded_records.to_string(),
            trial.torn_bytes.to_string(),
            trial.recovery_us.to_string(),
            format!("{:.1}", trial.outcome.journal_bytes as f64 / 1024.0),
            trial.outcome.effort.total().to_string(),
            trial.outcome.found.to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        points.push(json!({
            "label": label,
            "kill_after_records": trial.kill_after,
            "recovered_records": trial.recovered_records,
            "discarded_records": trial.discarded_records,
            "torn_bytes": trial.torn_bytes,
            "recovery_us": trial.recovery_us,
            "journal_bytes": trial.outcome.journal_bytes,
            "found": trial.outcome.found,
            "total_requests": trial.outcome.effort.total(),
            "outcome_digest": format!("{:016x}", trial.outcome.digest),
            "trace_digest": format!("{:016x}", trial.outcome.trace_digest),
            "bit_identical": identical,
        }));
    }
    ExperimentReport::new(
        "crash-recovery",
        "Crash-only attacker: kill-point sweep, journal recovery, bit-identical resume \
         (TINY world, chaos faults + live churn)",
        table.render(),
        json!({
            "committed_records": committed,
            "baseline_journal_bytes": journaled.journal_bytes,
            "yardstick_outcome_digest": format!("{:016x}", bare.digest),
            "yardstick_trace_digest": format!("{:016x}", bare.trace_digest),
            "found": bare.found,
            "points": points,
        }),
    )
}
