//! Post-attack trace forensics: reconstruct per-request causal chains
//! from the flight recorder and cross-check them against the request
//! ledgers (`crawler_refusals_total`, `platform_refusals_total`) and
//! the crawl's [`Effort`] line items.
//!
//! The audit's premise is simple: every retry, CAPTCHA, decoy and
//! refusal the attack paid for must be explained by exactly one traced
//! cause. Span ids are pure functions of `(TRACE_SEED, lane, ordinal)`,
//! so the audit re-derives them instead of trusting the records —
//! a corrupted or misattributed span shows up as an unexplained line,
//! not as a silently-different total.
//!
//! Reconciliation rules (each one mirrors an increment site in the
//! crawler/transport/platform source — see the doc on each check):
//!
//! * retries: `RetryStats::retries` bumps once per loop-bottom retry,
//!   so ledgered retries == attempt spans minus first-attempt records.
//! * edge/fault/throttle/shed: the crawler ledgers exactly the
//!   `Retryable`-classified refusals the resilient layer absorbed, so
//!   each source's ledger == retryable attempt spans with that
//!   provenance.
//! * suspension: ledgered once per account, so the ledger == distinct
//!   lanes with a suspension-provenance root span.
//! * CAPTCHA: absorbed on every served non-auth response, so the
//!   challenge count (and virtual solve time) == non-auth root spans
//!   carrying `captcha_ms`.
//! * decoys and per-endpoint effort buckets: counted once per fetch
//!   iteration, the same cadence the crawl-side root span is recorded.
//! * platform side: each serving span records the provenance of the
//!   response it produced, so per-source serving spans == the
//!   platform's own refusal counters; edge 429s never reach a handler
//!   and reconcile against `http_server_rate_limited_total` instead.
//! * live world: mutation events live on the reserved
//!   [`WORLD_LANE`] with their own span slot — they are *not* requests,
//!   so they are excluded from every per-request rule above and instead
//!   reconcile against `platform_mutations_total{kind=…}`; the crawl's
//!   stale re-fetch and tombstone annotations reconcile against
//!   `crawler_stale_refetch_total` / `crawler_tombstones_total`.

use std::collections::{BTreeMap, BTreeSet};

use hsp_crawler::Effort;
use hsp_obs::trace::{SLOT_ATTEMPT_BASE, SLOT_MUTATION, TRACE_SEED};
use hsp_obs::{Registry, SpanRecord, TraceCtx};
use hsp_platform::mutations::WORLD_LANE;
use serde::Serialize;

/// One row of the five-way refusal taxonomy, traced and ledgered on
/// both sides of the wire.
#[derive(Clone, Debug, Serialize)]
pub struct RefusalLine {
    pub source: String,
    /// Crawl-side traced count (retryable attempt spans; distinct
    /// suspended lanes for `suspension`).
    pub traced_crawler: u64,
    /// `crawler_refusals_total{source=…}`.
    pub ledger_crawler: u64,
    /// Platform-side traced count (serving spans with this provenance;
    /// edge-limiter spans for `edge`).
    pub traced_platform: u64,
    /// `platform_refusals_total{source=…}` (edge:
    /// `http_server_rate_limited_total`).
    pub ledger_platform: u64,
}

/// The reconstructed forensics report. `closed()` is the headline:
/// every effort line item and refusal counter is explained by traced
/// spans, with nothing left over.
#[derive(Clone, Debug, Serialize)]
pub struct TraceAudit {
    /// FNV-1a digest over the canonical span order, hex.
    pub digest: String,
    /// Total spans reconstructed.
    pub spans: u64,
    /// Spans lost to ring overflow — any loss voids the reconciliation.
    pub dropped: u64,
    /// Crawl-side root spans (one per issued request).
    pub roots: u64,
    /// Transport attempt spans under those roots.
    pub attempts: u64,
    /// Resilient exchange calls (first-attempt records).
    pub exchanges: u64,
    /// `attempts - exchanges`: retries implied by the trace.
    pub retries_traced: u64,
    /// `Effort::retry_requests` as the crawl ledgered it.
    pub retries_ledgered: u64,
    /// Five-way refusal reconciliation, crawl and platform side.
    pub refusals: Vec<RefusalLine>,
    pub captcha_traced: u64,
    pub captcha_ledgered: u64,
    pub captcha_ms_traced: u64,
    pub captcha_ms_ledgered: u64,
    pub decoys_traced: u64,
    pub decoys_ledgered: u64,
    /// Live-world mutation spans on the reserved world lane.
    pub mutations_traced: u64,
    /// Sum of `platform_mutations_total{kind=…}` across kinds.
    pub mutations_ledgered: u64,
    /// `crawler_stale_refetch_total` (reconciled against the effort's
    /// `stale_refetch_requests` annotation).
    pub stale_refetches_ledgered: u64,
    /// `crawler_tombstones_total` (reconciled against `Effort::tombstones`).
    pub tombstones_ledgered: u64,
    /// Root spans per endpoint label.
    pub endpoints: BTreeMap<String, u64>,
    /// The effort ledger the trace was reconciled against.
    pub effort: Effort,
    /// Every discrepancy found. Empty ⇔ the audit closes.
    pub unexplained: Vec<String>,
}

impl TraceAudit {
    /// Whether every ledgered cost is explained by exactly one traced
    /// cause (and every span is internally consistent).
    pub fn closed(&self) -> bool {
        self.unexplained.is_empty()
    }

    /// Write the report as `trace_<digest>.json` under `dir`; returns
    /// the path written.
    pub fn write_report(&self, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/trace_{}.json", self.digest);
        let body = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(format!("serialize trace audit: {e}")))?;
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

/// Crawl-side root spans carry `parent_id == 0`. Mutation spans on the
/// reserved world lane also parent to 0 but are world events, not
/// requests — they are never crawl roots.
fn is_root(s: &SpanRecord) -> bool {
    s.parent_id == 0 && s.lane != WORLD_LANE
}

/// Live-world mutation spans (one per applied event, world lane only).
fn is_mutation(s: &SpanRecord) -> bool {
    s.lane == WORLD_LANE
}

fn is_attempt(s: &SpanRecord) -> bool {
    s.name == "attempt"
}

fn is_serve(s: &SpanRecord) -> bool {
    s.name.starts_with("serve:")
}

/// Reconstruct and reconcile the attack's causal chains from the
/// registry's flight recorder against the crawl's [`Effort`]. The
/// registry must be the lab's shared one, with tracing enabled before
/// the crawler was built — untraced warm-up traffic shows up as
/// unexplained ledger residue, which is exactly what the audit is for.
pub fn audit_trace(obs: &Registry, effort: &Effort) -> TraceAudit {
    let tracer = obs.tracer();
    let spans = tracer.spans();
    let snap = obs.snapshot();
    let mut unexplained = Vec::new();

    let dropped = tracer.dropped();
    if dropped > 0 {
        unexplained
            .push(format!("{dropped} spans lost to ring overflow; reconciliation is partial"));
    }

    // ---- structural integrity: every id must re-derive ------------------
    let mut bad_trace_ids = 0u64;
    let mut bad_roots = 0u64;
    let mut bad_parents = 0u64;
    let mut bad_mutations = 0u64;
    for s in &spans {
        let ctx = TraceCtx::derive(TRACE_SEED, s.lane, s.ordinal);
        if s.trace_id != ctx.trace_id {
            bad_trace_ids += 1;
        }
        if is_mutation(s) {
            // World events use the mutation slot, never the root slot,
            // and their ordinal is the schedule index.
            if s.span_id != ctx.span(SLOT_MUTATION) || !s.name.starts_with("mutation:") {
                bad_mutations += 1;
            }
        } else if is_root(s) {
            if s.span_id != ctx.root_span() {
                bad_roots += 1;
            }
        } else if s.parent_id != ctx.root_span() {
            bad_parents += 1;
        }
    }
    if bad_trace_ids > 0 {
        unexplained.push(format!("{bad_trace_ids} spans fail trace-id re-derivation"));
    }
    if bad_roots > 0 {
        unexplained.push(format!("{bad_roots} root spans fail span-id re-derivation"));
    }
    if bad_parents > 0 {
        unexplained.push(format!("{bad_parents} spans not parented to their derived root"));
    }
    if bad_mutations > 0 {
        unexplained
            .push(format!("{bad_mutations} world-lane spans fail mutation-slot re-derivation"));
    }

    // ---- retries ---------------------------------------------------------
    // Each resilient `exchange()` call records attempts 1..=n; the
    // retry counter bumps exactly n-1 times, whatever the exit path.
    // Application-level auth resends reuse one trace context, so the
    // first-attempt count is over *records*, not distinct span ids.
    let attempts: Vec<&SpanRecord> = spans.iter().filter(|s| is_attempt(s)).collect();
    let exchanges = attempts
        .iter()
        .filter(|s| {
            let ctx = TraceCtx::derive(TRACE_SEED, s.lane, s.ordinal);
            s.span_id == ctx.span(SLOT_ATTEMPT_BASE + 1)
        })
        .count() as u64;
    let retries_traced = (attempts.len() as u64).saturating_sub(exchanges);
    if retries_traced != effort.retry_requests {
        unexplained.push(format!(
            "retries: trace implies {retries_traced}, effort ledger says {}",
            effort.retry_requests
        ));
    }

    // ---- five-way refusal taxonomy --------------------------------------
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| is_root(s)).collect();
    let serve_spans: Vec<&SpanRecord> = spans.iter().filter(|s| is_serve(s)).collect();
    let crawler_ledger =
        |src: &str| snap.counter(&format!("crawler_refusals_total{{source=\"{src}\"}}"));
    let platform_ledger =
        |src: &str| snap.counter(&format!("platform_refusals_total{{source=\"{src}\"}}"));
    let mut refusals = Vec::new();
    for src in ["edge", "fault", "throttle", "shed", "suspension"] {
        let traced_crawler = if src == "suspension" {
            // Ledgered once per account; a suspended account issues no
            // further requests, so distinct lanes is the account count.
            roots
                .iter()
                .filter(|s| s.provenance == src)
                .map(|s| s.lane)
                .collect::<BTreeSet<u64>>()
                .len() as u64
        } else {
            // Mirrors the increment sites in `ResilientExchange`: the
            // provenance subsets bump only in the Retryable branch.
            attempts.iter().filter(|s| s.outcome == "retryable" && s.provenance == src).count()
                as u64
        };
        let traced_platform = if src == "edge" {
            // Edge 429s never reach a handler; the edge writes its own
            // span, named after the limiter.
            spans.iter().filter(|s| s.name == "edge-limit").count() as u64
        } else {
            serve_spans.iter().filter(|s| s.provenance == src).count() as u64
        };
        let ledger_crawler = crawler_ledger(src);
        let ledger_platform = if src == "edge" {
            snap.counter("http_server_rate_limited_total")
        } else {
            platform_ledger(src)
        };
        if traced_crawler != ledger_crawler {
            unexplained.push(format!(
                "refusal[{src}]: crawl trace says {traced_crawler}, crawler ledger says {ledger_crawler}"
            ));
        }
        if traced_platform != ledger_platform {
            unexplained.push(format!(
                "refusal[{src}]: platform trace says {traced_platform}, platform ledger says {ledger_platform}"
            ));
        }
        refusals.push(RefusalLine {
            source: src.to_string(),
            traced_crawler,
            ledger_crawler,
            traced_platform,
            ledger_platform,
        });
    }

    // ---- CAPTCHA interstitials ------------------------------------------
    // Absorbed on every served non-auth response (enroll/relogin never
    // pay solve time), at the same site the root span is recorded.
    let captchas: Vec<&&SpanRecord> =
        roots.iter().filter(|s| s.name != "auth" && s.captcha_ms > 0).collect();
    let captcha_traced = captchas.len() as u64;
    let captcha_ms_traced: u64 = captchas.iter().map(|s| s.captcha_ms).sum();
    if captcha_traced != effort.captcha_challenges {
        unexplained.push(format!(
            "captcha: trace shows {captcha_traced} challenges, effort ledger says {}",
            effort.captcha_challenges
        ));
    }
    if captcha_ms_traced != effort.captcha_virtual_ms {
        unexplained.push(format!(
            "captcha: trace shows {captcha_ms_traced} virtual ms, effort ledger says {}",
            effort.captcha_virtual_ms
        ));
    }

    // ---- decoys and per-endpoint effort buckets -------------------------
    let mut endpoints: BTreeMap<String, u64> = BTreeMap::new();
    for s in &roots {
        *endpoints.entry(s.name.clone()).or_insert(0) += 1;
    }
    let roots_named = |name: &str| endpoints.get(name).copied().unwrap_or(0);
    let decoys_traced = roots_named("decoy");
    // Fetch iterations bill the effort bucket even when the transport
    // fails outright; messages bill only once a response came back.
    let message_roots =
        roots.iter().filter(|s| s.name == "message" && s.outcome != "transport").count() as u64;
    let buckets: [(&str, u64, u64); 5] = [
        ("seeds", roots_named("find-friends"), effort.seed_requests),
        ("profiles", roots_named("profile"), effort.profile_requests),
        (
            "friend-lists",
            roots_named("friends") + roots_named("circles"),
            effort.friend_list_requests,
        ),
        ("messages", message_roots, effort.message_requests),
        ("decoys", decoys_traced, effort.decoy_requests),
    ];
    for (what, traced, ledgered) in buckets {
        if traced != ledgered {
            unexplained.push(format!(
                "{what}: trace shows {traced} requests, effort ledger says {ledgered}"
            ));
        }
    }

    // ---- live world: mutations, stale re-fetches, tombstones -------------
    // Each applied mutation records one world-lane span at the same site
    // `platform_mutations_total{kind=…}` bumps, so the sum across kinds
    // must equal the span count. Stale re-fetch GETs are already billed
    // into the per-endpoint buckets above (and traced as ordinary
    // roots); the *annotations* reconcile against their own counters.
    let mutations_traced = spans.iter().filter(|s| is_mutation(s)).count() as u64;
    let mutations_ledgered: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("platform_mutations_total"))
        .map(|(_, v)| *v)
        .sum();
    if mutations_traced != mutations_ledgered {
        unexplained.push(format!(
            "mutations: trace shows {mutations_traced} applied events, \
             platform ledger says {mutations_ledgered}"
        ));
    }
    let stale_refetches_ledgered = snap.counter("crawler_stale_refetch_total");
    if stale_refetches_ledgered != effort.stale_refetch_requests {
        unexplained.push(format!(
            "stale re-fetches: metric says {stale_refetches_ledgered}, \
             effort annotation says {}",
            effort.stale_refetch_requests
        ));
    }
    let tombstones_ledgered = snap.counter("crawler_tombstones_total");
    if tombstones_ledgered != effort.tombstones {
        unexplained.push(format!(
            "tombstones: metric says {tombstones_ledgered}, effort annotation says {}",
            effort.tombstones
        ));
    }

    TraceAudit {
        digest: format!("{:016x}", tracer.digest()),
        spans: spans.len() as u64,
        dropped,
        roots: roots.len() as u64,
        attempts: attempts.len() as u64,
        exchanges,
        retries_traced,
        retries_ledgered: effort.retry_requests,
        refusals,
        captcha_traced,
        captcha_ledgered: effort.captcha_challenges,
        captcha_ms_traced,
        captcha_ms_ledgered: effort.captcha_virtual_ms,
        decoys_traced,
        decoys_ledgered: effort.decoy_requests,
        mutations_traced,
        mutations_ledgered,
        stale_refetches_ledgered,
        tombstones_ledgered,
        endpoints,
        effort: *effort,
        unexplained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{full_attack_with, Lab};
    use hsp_platform::{DefenseConfig, DetectorStrength, FaultPlan, PlatformConfig};
    use hsp_synth::ScenarioConfig;

    /// A fault-free traced attack reconciles with nothing left over.
    #[test]
    fn clean_attack_audit_closes() {
        let lab = Lab::facebook(&ScenarioConfig::tiny());
        lab.obs.enable_tracing(4096);
        let run = full_attack_with(&lab, lab.resilient_crawler(3, "audit", 7));
        let audit = audit_trace(&lab.obs, &run.effort_total);
        assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
        assert!(audit.roots > 0 && audit.attempts >= audit.roots);
        assert_eq!(audit.retries_traced, 0);
        assert_eq!(audit.dropped, 0);
    }

    /// Under chaos *and* an armed sybil detector, every retry and
    /// refusal still reconciles to exactly one traced cause.
    #[test]
    fn chaotic_defended_attack_audit_closes() {
        let config = PlatformConfig {
            faults: FaultPlan::chaos(),
            defense: DefenseConfig { strength: DetectorStrength::Medium, seed: 11 },
            ..PlatformConfig::default()
        };
        let lab = Lab::facebook_configured(&ScenarioConfig::tiny(), config);
        lab.obs.enable_tracing(16384);
        let run = full_attack_with(&lab, lab.resilient_crawler(3, "audit-chaos", 23));
        let audit = audit_trace(&lab.obs, &run.effort_total);
        assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
        assert!(audit.retries_traced > 0, "chaos run should have traced retries");
        let fault = audit.refusals.iter().find(|r| r.source == "fault").unwrap();
        assert_eq!(fault.traced_crawler, fault.ledger_crawler);
    }

    /// A live (mutating) world's attack still reconciles: mutation
    /// spans stay off the per-request rules and close against
    /// `platform_mutations_total`; stale re-fetch and tombstone
    /// annotations close against their counters.
    #[test]
    fn live_world_attack_audit_closes() {
        let lab = Lab::facebook_live(&ScenarioConfig::tiny(), 16.0);
        lab.obs.enable_tracing(16384);
        let run = full_attack_with(&lab, lab.resilient_crawler(3, "audit-live", 7));
        let audit = audit_trace(&lab.obs, &run.effort_total);
        assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
        assert!(audit.mutations_traced > 0, "x16 churn should apply mutations mid-crawl");
        assert_eq!(audit.mutations_traced, audit.mutations_ledgered);
        assert_eq!(audit.stale_refetches_ledgered, run.effort_total.stale_refetch_requests);
        assert_eq!(audit.tombstones_ledgered, run.effort_total.tombstones);
    }

    /// A cooked ledger is caught: inflate the effort's retry count and
    /// the audit must refuse to close.
    #[test]
    fn audit_flags_cooked_ledger() {
        let lab = Lab::facebook(&ScenarioConfig::tiny());
        lab.obs.enable_tracing(4096);
        let run = full_attack_with(&lab, lab.resilient_crawler(3, "audit-bad", 7));
        let mut cooked = run.effort_total;
        cooked.retry_requests += 5;
        cooked.captcha_challenges += 1;
        let audit = audit_trace(&lab.obs, &cooked);
        assert!(!audit.closed());
        assert!(audit.unexplained.iter().any(|u| u.contains("retries:")));
        assert!(audit.unexplained.iter().any(|u| u.contains("captcha:")));
    }
}
