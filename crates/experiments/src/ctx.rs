//! Execution context: caches one full attack per school so `all` runs
//! each expensive crawl exactly once.

use crate::runner::{full_attack, full_attack_with, AttackRun, Lab};
use hsp_obs::Registry;
use hsp_synth::ScenarioConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// A school's lab + completed attack.
pub struct SchoolRun {
    pub lab: Lab,
    pub run: AttackRun,
}

/// Shared experiment context.
pub struct Ctx {
    /// Run the crawl over real loopback TCP instead of in-process.
    pub tcp: bool,
    /// Worker threads for the crawl. 1 = the classic sequential
    /// crawler; above that the in-process crawl runs on the parallel
    /// scheduler (results are bit-identical either way across worker
    /// counts — see `hsp_crawler::scheduler`).
    pub workers: usize,
    /// One registry spanning every cached school run, so a metrics
    /// snapshot after an experiment covers all work it triggered.
    pub obs: Arc<Registry>,
    runs: HashMap<&'static str, SchoolRun>,
}

/// Seed for the parallel crawler's retry jitter streams (any fixed
/// value works; this one matches the chaos gate's).
const CRAWL_SEED: u64 = 0x9d5f_2013;

impl Ctx {
    pub fn new(tcp: bool) -> Ctx {
        Self::with_workers(tcp, 1)
    }

    pub fn with_workers(tcp: bool, workers: usize) -> Ctx {
        Ctx { tcp, workers: workers.max(1), obs: Registry::shared(), runs: HashMap::new() }
    }

    /// The scenario config for a school label.
    pub fn config_for(which: &str) -> ScenarioConfig {
        match which {
            "HS1" => ScenarioConfig::hs1(),
            "HS2" => ScenarioConfig::hs2(),
            "HS3" => ScenarioConfig::hs3(),
            "TINY" => ScenarioConfig::tiny(),
            "BENCH" => ScenarioConfig::bench(),
            other => panic!("unknown school {other}"),
        }
    }

    /// Get (running if needed) the standard full attack on a school.
    pub fn school(&mut self, which: &'static str) -> &SchoolRun {
        let tcp = self.tcp;
        let workers = self.workers;
        let obs = Arc::clone(&self.obs);
        self.runs.entry(which).or_insert_with(|| {
            eprintln!("[ctx] generating + attacking {which} ...");
            let mut lab = Lab::facebook_with_registry(&Self::config_for(which), obs);
            let run = if workers > 1 && !tcp {
                let accounts = lab.paper_account_count();
                let access = Box::new(lab.parallel_crawler(accounts, workers, "atk", CRAWL_SEED));
                full_attack_with(&lab, access)
            } else {
                full_attack(&mut lab, tcp)
            };
            SchoolRun { lab, run }
        })
    }

    /// Mutable access (some experiments continue crawling).
    pub fn school_mut(&mut self, which: &'static str) -> &mut SchoolRun {
        self.school(which);
        self.runs.get_mut(which).expect("just inserted")
    }
}
