//! Aligned ASCII table rendering for experiment output.

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with no decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["alpha", "1"]);
        t.row_strs(&["b", "12345"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // All rows align on the separator.
        let bar = lines[2].find('|').unwrap();
        assert_eq!(lines[3].find('|').unwrap(), bar);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f1(3.15159), "3.2");
        assert_eq!(pct(84.6), "85%");
    }
}
