//! CLI: `experiments [ids... | all] [--tcp] [--workers N] [--json <dir>]`
//!
//! Regenerates the paper's tables and figures against the synthetic
//! substrate. `--tcp` runs every crawl over real loopback HTTP;
//! `--workers N` drives in-process crawls with the deterministic
//! parallel scheduler on `N` threads (identical results, less
//! wall-clock); `--json <dir>` additionally writes machine-readable
//! results.
//! After each experiment a full metrics snapshot (counters, gauges,
//! latency quantiles, phase timings, recent events) is written to
//! `results/metrics_<experiment>.json`.

use hsp_experiments::{run_experiment, Ctx, ALL_EXPERIMENTS};

/// Dump the context registry as `results/metrics_<id>.json`.
/// Best-effort: telemetry must never fail an experiment run.
fn write_metrics_snapshot(ctx: &Ctx, id: &str) {
    let snap = ctx.obs.snapshot();
    let Ok(body) = serde_json::to_string_pretty(&snap) else { return };
    if std::fs::create_dir_all("results").is_ok() {
        let path = format!("results/metrics_{id}.json");
        if std::fs::write(&path, body).is_ok() {
            eprintln!("[metrics] wrote {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = args.iter().any(|a| a == "--tcp");
    let json_dir = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let workers_arg =
        args.iter().position(|a| a == "--workers").and_then(|i| args.get(i + 1)).cloned();
    let workers: usize = workers_arg
        .as_deref()
        .map(|w| w.parse().expect("--workers takes a positive integer"))
        .unwrap_or(1);
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| json_dir.as_deref() != Some(a.as_str()))
        .filter(|a| workers_arg.as_deref() != Some(a.as_str()))
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }
    let mut ctx = Ctx::with_workers(tcp, workers);
    for id in &ids {
        match run_experiment(&mut ctx, id) {
            Some(report) => {
                println!("{}", report.printable());
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{}.json", report.id);
                    std::fs::write(
                        &path,
                        serde_json::to_string_pretty(&report.json).expect("serialize"),
                    )
                    .expect("write json");
                    eprintln!("[json] wrote {path}");
                }
                write_metrics_snapshot(&ctx, &report.id);
            }
            None => {
                eprintln!("unknown experiment '{id}'; available: {}", ALL_EXPERIMENTS.join(", "));
                std::process::exit(2);
            }
        }
    }
}
