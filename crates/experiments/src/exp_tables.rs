//! Table experiments: regenerate Tables 1–6 of the paper.

use crate::ctx::Ctx;
use crate::report::ExperimentReport;
use crate::tablefmt::{f1, Table};
use hsp_core::{run_enhanced, EnhanceOptions};
use hsp_policy::{facebook_matrix, googleplus_matrix};
use serde_json::json;

/// Table 1: Facebook's stranger-visibility matrix, probed from the
/// policy engine.
pub fn table1(_ctx: &mut Ctx) -> ExperimentReport {
    let m = facebook_matrix();
    ExperimentReport::new(
        "table1",
        "Facebook: default and worst-case information available to strangers",
        m.render(),
        serde_json::to_value(&m).expect("serializable"),
    )
}

/// Table 6: the Google+ matrix (paper Appendix A).
pub fn table6(_ctx: &mut Ctx) -> ExperimentReport {
    let m = googleplus_matrix();
    ExperimentReport::new(
        "table6",
        "Google+: default and worst-case information available to strangers",
        m.render(),
        serde_json::to_value(&m).expect("serializable"),
    )
}

/// Paper reference values for Table 2, for side-by-side display.
const TABLE2_PAPER: [(&str, &str, &str, &str, &str, &str, &str); 3] = [
    ("HS1", "362", "325", "352", "18", "6282", "22"),
    ("HS2", "1500", "N/A", "1559", "70", "14317", "152"),
    ("HS3", "1500", "N/A", "1532", "46", "11736", "178"),
];

/// Table 2: seeds, core users, candidates and extended cores per school.
pub fn table2(ctx: &mut Ctx) -> ExperimentReport {
    let mut table = Table::new(&[
        "school",
        "students",
        "on OSN",
        "seeds",
        "core",
        "candidates",
        "ext. core",
        "(paper: seeds/core/cand/ext)",
    ]);
    let mut rows_json = Vec::new();
    for (i, school) in ["HS1", "HS2", "HS3"].into_iter().enumerate() {
        let sr = ctx.school(match school {
            "HS1" => "HS1",
            "HS2" => "HS2",
            _ => "HS3",
        });
        let roster = sr.lab.scenario.roster().len();
        let seeds = sr.run.discovery.seeds.len();
        let core = sr.run.discovery.core.len();
        let candidates = sr.run.discovery.candidate_count();
        let ext = sr.run.enhanced.extended_core.len();
        let p = TABLE2_PAPER[i];
        table.row(&[
            school.to_string(),
            sr.lab.scenario.config.school_size.to_string(),
            roster.to_string(),
            seeds.to_string(),
            core.to_string(),
            candidates.to_string(),
            ext.to_string(),
            format!("{}/{}/{}/{}", p.3, p.4, p.5, p.6),
        ]);
        rows_json.push(json!({
            "school": school,
            "students": sr.lab.scenario.config.school_size,
            "on_osn": roster,
            "seeds": seeds,
            "core": core,
            "candidates": candidates,
            "extended_core": ext,
        }));
    }
    ExperimentReport::new(
        "table2",
        "Seeds, core users, and candidates for the three high schools",
        table.render(),
        json!({ "rows": rows_json }),
    )
}

/// Table 3: measurement effort (HTTP requests by purpose).
pub fn table3(ctx: &mut Ctx) -> ExperimentReport {
    let mut table = Table::new(&[
        "school",
        "accounts",
        "seed reqs",
        "profile pages",
        "friend-list reqs",
        "total basic",
        "total enhanced",
        "(paper basic/enh)",
    ]);
    let paper = [("HS1", 746u64, 1576u64), ("HS2", 3060, 7700), ("HS3", 2542, 8182)];
    let mut rows_json = Vec::new();
    for (school, paper_basic, paper_enh) in paper {
        let sr = ctx.school(match school {
            "HS1" => "HS1",
            "HS2" => "HS2",
            _ => "HS3",
        });
        let accounts = sr.lab.paper_account_count();
        let basic = sr.run.effort_basic;
        let total = sr.run.effort_total;
        table.row(&[
            school.to_string(),
            accounts.to_string(),
            basic.seed_requests.to_string(),
            basic.profile_requests.to_string(),
            basic.friend_list_requests.to_string(),
            basic.total().to_string(),
            total.total().to_string(),
            format!("{paper_basic}/{paper_enh}"),
        ]);
        rows_json.push(json!({
            "school": school,
            "accounts": accounts,
            "basic": basic,
            "total": total,
        }));
    }
    ExperimentReport::new(
        "table3",
        "Measurement effort (HTTP requests actually issued by the crawler)",
        table.render(),
        json!({ "rows": rows_json }),
    )
}

/// Paper Table 4 reference cells (x/y) per variant and threshold.
const TABLE4_PAPER: [(&str, [&str; 4]); 4] = [
    ("basic", ["140/112", "206/162", "271/224", "301/254"]),
    ("basic+filter", ["148/122", "196/165", "259/227", "299/264"]),
    ("enhanced", ["169/155", "231/211", "261/239", "304/281"]),
    ("enhanced+filter", ["175/158", "232/211", "272/250", "299/276"]),
];

/// Table 4: HS1 found/correct-year for four method variants × four
/// thresholds.
pub fn table4(ctx: &mut Ctx) -> ExperimentReport {
    let thresholds = [200usize, 300, 400, 500];
    // Variant matrix: (label, enhance, filter).
    let variants = [
        ("basic", false, false),
        ("basic+filter", false, true),
        ("enhanced", true, false),
        ("enhanced+filter", true, true),
    ];
    let truth = {
        let sr = ctx.school("HS1");
        sr.lab.ground_truth()
    };
    let mut table = Table::new(&[
        "method (x=found / y=correct year)",
        "top 200",
        "top 300",
        "top 400",
        "top 500",
        "paper @400",
    ]);
    let mut rows_json = Vec::new();
    for (vi, (label, enhance, filter)) in variants.into_iter().enumerate() {
        let mut cells = vec![label.to_string()];
        let mut cells_json = Vec::new();
        for &t in &thresholds {
            let sr = ctx.school_mut("HS1");
            let (guessed, inferred): (Vec<hsp_graph::UserId>, Vec<Option<i32>>) = if !enhance
                && !filter
            {
                let g = sr.run.discovery.guessed_students(t);
                let years = g.iter().map(|&u| sr.run.discovery.inferred_year(u)).collect();
                (g, years)
            } else {
                let enhanced = run_enhanced(
                    sr.run.access.as_mut(),
                    &sr.run.discovery,
                    &EnhanceOptions {
                        t,
                        filtering: filter,
                        enhance,
                        school_city: sr.lab.scenario.home_city,
                    },
                )
                .expect("variant run");
                let g = enhanced.guessed_students(t);
                let years = g.iter().map(|&u| enhanced.inferred_year(u, &sr.run.config)).collect();
                (g, years)
            };
            let year_of = |u: hsp_graph::UserId| {
                guessed.iter().position(|&g| g == u).and_then(|i| inferred[i])
            };
            let point = hsp_core::evaluate(t, &guessed, year_of, &truth);
            cells.push(format!("{}/{}", point.found, point.correct_year));
            cells_json.push(json!({
                "t": t,
                "found": point.found,
                "correct_year": point.correct_year,
                "false_positives": point.false_positives,
            }));
        }
        cells.push(TABLE4_PAPER[vi].1[2].to_string());
        table.row(&cells);
        rows_json.push(json!({ "variant": label, "points": cells_json }));
    }
    let note = format!(
        "HS1 roster on OSN: {} students (paper: 325). Cells are x/y = found/correct-year.\n",
        truth.len()
    );
    ExperimentReport::new(
        "table4",
        "Results for HS1: four method variants × four thresholds",
        format!("{note}{}", table.render()),
        json!({ "roster": truth.len(), "rows": rows_json }),
    )
}

/// Table 5 + §6.1: extending the profiles.
pub fn table5(ctx: &mut Ctx) -> ExperimentReport {
    let paper = [
        ("HS1", 112u32, 73.0, 405.0, 89.0, 15.0, 13.0, 9.0, 19.0),
        ("HS2", 700, 77.0, 960.0, 86.0, 26.0, 20.0, 4.0, 51.0),
        ("HS3", 795, 87.0, 908.0, 91.0, 34.0, 33.0, 6.0, 57.0),
    ];
    let mut table =
        Table::new(&["metric", "HS1", "HS1(paper)", "HS2", "HS2(paper)", "HS3", "HS3(paper)"]);
    let mut per_school = Vec::new();
    for (i, school) in ["HS1", "HS2", "HS3"].into_iter().enumerate() {
        let sr = ctx.school_mut(school);
        let t = sr.run.config.school_size_estimate as usize;
        let guessed = sr.run.enhanced.guessed_students(t);
        // Identified minors registered as adults: guessed students whose
        // classified year is one of the first three classes and whose
        // page is non-minimal (§6's method: a non-minimal page implies a
        // registered adult).
        let first_three: Vec<i32> = sr.run.config.class_years()[..3].to_vec();
        let mut adults = Vec::new();
        let mut minors = Vec::new();
        for &u in &guessed {
            let Some(year) = sr.run.enhanced.inferred_year(u, &sr.run.config) else {
                continue;
            };
            if !first_three.contains(&year) {
                continue;
            }
            let profile = sr.run.access.profile(u).expect("profile fetch");
            if profile.is_minimal() {
                minors.push(u);
            } else {
                adults.push(u);
            }
        }
        let stats =
            hsp_core::audit_adult_registered(sr.run.access.as_mut(), &adults).expect("audit");
        // §6.1: reverse lookup over the guessed set; average recovered
        // list length for the (registered-minor) minimal-profile users.
        let rec = hsp_core::recover_friend_lists(sr.run.access.as_mut(), &guessed)
            .expect("reverse lookup");
        let minor_recovered: Vec<usize> = minors.iter().map(|&u| rec.friends_of(u).len()).collect();
        let avg_recovered = if minor_recovered.is_empty() {
            0.0
        } else {
            minor_recovered.iter().sum::<usize>() as f64 / minor_recovered.len() as f64
        };
        per_school.push((school, stats, adults.len(), avg_recovered));
        let _ = i;
    }
    let p = &paper;
    let row = |label: &str,
               ours: &dyn Fn(usize) -> String,
               paper_col: &dyn Fn(usize) -> String,
               table: &mut Table| {
        table.row(&[
            label.to_string(),
            ours(0),
            paper_col(0),
            ours(1),
            paper_col(1),
            ours(2),
            paper_col(2),
        ]);
    };
    row(
        "# minors registered as adults (identified)",
        &|i| per_school[i].2.to_string(),
        &|i| p[i].1.to_string(),
        &mut table,
    );
    row(
        "% friend list public",
        &|i| f1(per_school[i].1.pct_friend_list_public),
        &|i| f1(p[i].2),
        &mut table,
    );
    row(
        "avg friends (public lists)",
        &|i| f1(per_school[i].1.avg_friends_public),
        &|i| f1(p[i].3),
        &mut table,
    );
    row("% message link", &|i| f1(per_school[i].1.pct_message_link), &|i| f1(p[i].4), &mut table);
    row(
        "% relationship info",
        &|i| f1(per_school[i].1.pct_relationship),
        &|i| f1(p[i].5),
        &mut table,
    );
    row("% interested in", &|i| f1(per_school[i].1.pct_interested_in), &|i| f1(p[i].6), &mut table);
    row("% birthday", &|i| f1(per_school[i].1.pct_birthday), &|i| f1(p[i].7), &mut table);
    row("avg # photos shared", &|i| f1(per_school[i].1.avg_photos), &|i| f1(p[i].8), &mut table);
    row(
        "avg recovered friends per reg. minor (§6.1; paper 38/141/129)",
        &|i| f1(per_school[i].3),
        &|i| ["38", "141", "129"][i].to_string(),
        &mut table,
    );
    let json = json!({
        "schools": per_school.iter().map(|(s, stats, n, rec)| json!({
            "school": s,
            "identified_adult_registered": n,
            "stats": stats,
            "avg_recovered_friends_registered_minor": rec,
        })).collect::<Vec<_>>()
    });
    ExperimentReport::new(
        "table5",
        "Extending the profiles of minors registered as adults (+ §6.1 reverse lookup)",
        table.render(),
        json,
    )
}
