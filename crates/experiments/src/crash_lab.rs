//! Crash-only attacker harness: kill-point injection over a journaled
//! parallel crawl, and bit-identical resume from the durable journal.
//!
//! The model: the *attacker's process* dies (power cut, OOM kill,
//! operator ctrl-C) at an arbitrary journal byte boundary; the platform
//! — the real social network — of course keeps running. So a trial
//! shares one [`Lab`] (one platform, one clock, one mutation engine,
//! one flight recorder) between the killed run and its resume, while
//! the baseline runs on a *separate identically-seeded* lab. The gate
//! is that kill + resume converges to the uninterrupted run exactly:
//! same `Effort` ledger, same Table-4-style outcome digest, same trace
//! digest (minus the administrative recovery lane).
//!
//! Replay correctness rests on the sequence-mode substrate: every seat
//! is built with [`ResilientExchange::with_attempt_seq`], so each
//! request carries a per-account monotone `x-attempt-seq`. The platform
//! keys its fault draws on `(account, seq, site)` instead of a served
//! counter, and its anti-crawl accounting is replay-aware — a resumed
//! crawler re-driving the request prefix after its last durable commit
//! gets byte-identical responses and bills nothing twice.

use crate::runner::Lab;
use hsp_core::{evaluate, run_basic, run_enhanced, EnhanceOptions};
use hsp_crawler::{
    fold_state, recover_instrumented, AccountSeat, CrawlError, Effort, Journal, JournalMetrics,
    KillPlan, OsnAccess, ParallelCrawler, ResumeState, LANE_RECOVERY,
};
use hsp_graph::UserId;
use hsp_http::{DirectExchange, Handler, ResilientExchange, RetryPolicy, RetryStats};
use hsp_obs::{FlightRecorder, SpanRecord, VirtualClock};
use hsp_platform::{FaultPlan, PlatformConfig};
use hsp_synth::ScenarioConfig;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Fake accounts the crash attacker starts with (the paper's HS1 pair).
pub const CRASH_ACCOUNTS: usize = 2;
/// Recruitment cap (the 2→4→8 escalation).
pub const CRASH_MAX_ACCOUNTS: usize = 8;
/// Per-lane flight-recorder ring capacity for crash trials.
pub const CRASH_TRACE_CAP: usize = 16_384;
/// Group-commit batching: fdatasync every n-th committed group. The
/// scheduler seals one group per crawl op, so a message-heavy attack
/// phase pays ~1 fdatasync per message under eager syncing; batching
/// amortizes that to ~1/64 while recovery semantics stay unchanged
/// (a power cut can lose at most the last 63 committed groups, all
/// idempotent, which a resume re-drives through the replay-aware
/// platform; a mere process crash loses nothing — the bytes are
/// already in the page cache).
pub const CRASH_SYNC_EVERY: u64 = 64;

type CrashExchange = ResilientExchange<DirectExchange>;

/// A crash trial's platform: chaos faults armed **and** a live
/// (mutating) world — the hardest setting the determinism gates cover —
/// with the sybil detector off (crash-determinism and behavioral
/// scoring are separate arms; see DESIGN.md §10 non-goals).
pub fn crash_lab(cfg: &ScenarioConfig, churn: f64) -> Lab {
    Lab::facebook_configured(
        cfg,
        PlatformConfig {
            faults: FaultPlan::chaos(),
            mutations: Lab::churn_plan(cfg, churn),
            ..PlatformConfig::default()
        },
    )
}

/// One finished (baseline or resumed) attack, reduced to the three
/// equality gates plus journal cost accounting.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// Students identified at t = enrollment estimate.
    pub found: usize,
    /// The attacker's complete effort ledger.
    pub effort: Effort,
    /// FNV-1a over the Table-2/Table-4 outputs (seed/core/candidate
    /// counts, the exact ranked guess list, the eval triple).
    pub digest: u64,
    /// Flight-recorder digest excluding [`LANE_RECOVERY`].
    pub trace_digest: u64,
    /// Final journal size on disk (0 for un-journaled baselines).
    pub journal_bytes: u64,
}

/// One kill-point trial: where it died, what recovery saw, and the
/// resumed run's outcome.
#[derive(Clone, Debug)]
pub struct KillTrial {
    pub kill_after: u64,
    /// The kill point lay beyond the journal's natural length, so the
    /// run completed uninterrupted (still journaled).
    pub completed_before_kill: bool,
    /// Times the process "died" and restarted (0 or 1 per trial).
    pub resumes: u64,
    /// Committed records the resume recovered from the journal.
    pub recovered_records: u64,
    /// Valid-but-uncommitted tail records recovery discarded.
    pub discarded_records: u64,
    /// Torn bytes recovery cut off the tail.
    pub torn_bytes: u64,
    /// Wall-clock cost of scan + fold + reopen, microseconds.
    pub recovery_us: u64,
    pub outcome: CrashOutcome,
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn make_seat(
    handler: &Arc<dyn Handler>,
    tracer: &Arc<FlightRecorder>,
    stats: &Arc<RetryStats>,
    seed: u64,
    i: u64,
) -> AccountSeat<CrashExchange> {
    let clock = VirtualClock::shared();
    AccountSeat {
        exchange: ResilientExchange::with_stats(
            DirectExchange::new(Arc::clone(handler)),
            RetryPolicy::seeded(seed ^ i),
            Arc::clone(&clock),
            Arc::clone(stats),
        )
        .with_tracer(Arc::clone(tracer))
        .with_attempt_seq(),
        clock: Some(clock),
    }
}

/// Build a fresh journaled (or volatile, when `journal` is `None`)
/// crash attacker over `lab`. Seat `i` is seeded `seed ^ i`; recruits
/// continue at `accounts + 1, accounts + 2, ...` — the same convention
/// [`Lab::parallel_crawler`] uses, which is what lets a resume re-mint
/// byte-identical replacement seats.
fn build_fresh(
    lab: &Lab,
    seed: u64,
    workers: usize,
    journal: Option<Journal>,
) -> Result<ParallelCrawler<CrashExchange>, CrawlError> {
    let stats = Arc::new(RetryStats::default());
    let handler = lab.handler();
    let tracer = Arc::clone(lab.obs.tracer());
    let seats: Vec<_> =
        (0..CRASH_ACCOUNTS as u64).map(|i| make_seat(&handler, &tracer, &stats, seed, i)).collect();
    let factory = {
        let (handler, tracer, stats) = (handler, tracer, Arc::clone(&stats));
        let mut next = CRASH_ACCOUNTS as u64;
        move || {
            next += 1;
            make_seat(&handler, &tracer, &stats, seed, next)
        }
    };
    let mut builder = ParallelCrawler::builder("crash")
        .workers(workers)
        .observability(&lab.obs)
        .retry_stats(stats)
        .recruit_with(factory, CRASH_MAX_ACCOUNTS);
    if let Some(journal) = journal {
        builder = builder.journal(journal);
    }
    builder.build(seats)
}

/// Rebuild the attacker from a recovered journal state: one fresh seat
/// per journaled lane, re-minted with the *original* per-seat seeds
/// (initial lane `i` was seat `i`; recruit lane `CRASH_ACCOUNTS + j`
/// was seat `CRASH_ACCOUNTS + 1 + j`), then restored from the journal
/// by [`hsp_crawler::ParallelCrawlerBuilder::build_resumed`].
fn build_resumed(
    lab: &Lab,
    seed: u64,
    workers: usize,
    state: &ResumeState,
    journal: Journal,
) -> Result<ParallelCrawler<CrashExchange>, CrawlError> {
    let stats = Arc::new(RetryStats::default());
    let handler = lab.handler();
    let tracer = Arc::clone(lab.obs.tracer());
    let seat_index = |lane: usize| -> u64 {
        if lane < CRASH_ACCOUNTS {
            lane as u64
        } else {
            (CRASH_ACCOUNTS + 1 + (lane - CRASH_ACCOUNTS)) as u64
        }
    };
    let seats: Vec<_> = (0..state.lanes.len())
        .map(|i| make_seat(&handler, &tracer, &stats, seed, seat_index(i)))
        .collect();
    let factory = {
        let (handler, tracer, stats) = (handler, tracer, Arc::clone(&stats));
        // The original factory had handed out `recruited` seats already.
        let mut next = CRASH_ACCOUNTS as u64 + state.sched.recruited;
        move || {
            next += 1;
            make_seat(&handler, &tracer, &stats, seed, next)
        }
    };
    ParallelCrawler::builder("crash")
        .workers(workers)
        .observability(&lab.obs)
        .retry_stats(stats)
        .recruit_with(factory, CRASH_MAX_ACCOUNTS)
        .journal(journal)
        .build_resumed(state, seats)
}

/// Drive the full basic + enhanced methodology and reduce to
/// `(outcome digest, found)`.
fn drive(lab: &Lab, access: &mut dyn OsnAccess) -> Result<(u64, usize), CrawlError> {
    let config = lab.attack_config();
    let t = config.school_size_estimate as usize;
    let discovery = run_basic(access, &config)?;
    let enhanced = run_enhanced(
        access,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: lab.scenario.home_city },
    )?;
    let truth = lab.ground_truth();
    let guessed: Vec<UserId> = enhanced.guessed_students(t);
    let eval = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv(&mut h, discovery.seeds.len() as u64);
    fnv(&mut h, discovery.core.len() as u64);
    fnv(&mut h, discovery.candidate_count() as u64);
    fnv(&mut h, guessed.len() as u64);
    for &u in &guessed {
        fnv(&mut h, u.0);
    }
    fnv(&mut h, eval.found as u64);
    fnv(&mut h, eval.correct_year as u64);
    fnv(&mut h, eval.guessed as u64);
    Ok((h, eval.found))
}

fn file_bytes(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// The yardstick: an uninterrupted attack on a fresh identically-seeded
/// lab. `journal` controls whether it journals (overhead measurement
/// wants both; the digest gates compare against either — journaling
/// never changes results).
pub fn baseline(
    cfg: &ScenarioConfig,
    seed: u64,
    workers: usize,
    churn: f64,
    journal_path: Option<&Path>,
) -> CrashOutcome {
    baseline_on(&crash_lab(cfg, churn), seed, workers, journal_path)
}

/// [`baseline`] over a caller-held lab (span-level inspection).
pub fn baseline_on(
    lab: &Lab,
    seed: u64,
    workers: usize,
    journal_path: Option<&Path>,
) -> CrashOutcome {
    lab.obs.enable_tracing(CRASH_TRACE_CAP);
    let journal = journal_path
        .map(|p| Journal::create(p).expect("baseline journal").with_sync_every(CRASH_SYNC_EVERY));
    let mut crawler = build_fresh(lab, seed, workers, journal).expect("baseline crawler");
    let (digest, found) = drive(lab, &mut crawler).expect("baseline attack");
    CrashOutcome {
        found,
        effort: crawler.effort(),
        digest,
        trace_digest: lab.obs.tracer().digest_excluding(&[LANE_RECOVERY]),
        journal_bytes: journal_path.map(file_bytes).unwrap_or(0),
    }
}

/// Run the crash-only startup path: recover whatever the journal holds
/// (a missing or empty file is a legal empty log), then either resume
/// or start fresh — the startup path *is* the recovery path.
#[allow(clippy::type_complexity)]
fn attempt(
    lab: &Lab,
    seed: u64,
    workers: usize,
    path: &Path,
    metrics: &JournalMetrics,
    kill: Option<KillPlan>,
    trial: &mut KillTrial,
) -> Result<(u64, usize, Effort), CrawlError> {
    let t0 = Instant::now();
    let log = recover_instrumented(path, metrics).expect("journal recovery");
    let state = fold_state(&log.records).expect("journal fold");
    let journal = match &state {
        Some(state) => Journal::create_with_base(path, state),
        None => Journal::create(path),
    }
    .expect("journal reopen")
    .with_sync_every(CRASH_SYNC_EVERY)
    .with_metrics(metrics.clone());
    let journal = match kill {
        Some(plan) => journal.with_kill_plan(plan),
        None => journal,
    };
    if state.is_some() {
        trial.recovered_records = log.records.len() as u64;
        trial.discarded_records = log.discarded_records;
        trial.torn_bytes = log.torn_bytes;
        trial.recovery_us = t0.elapsed().as_micros() as u64;
        // Administrative span on the recovery lane: present only in
        // resumed runs, hence excluded from the comparison digest.
        lab.obs.tracer().record(SpanRecord {
            trace_id: 0,
            span_id: trial.resumes,
            parent_id: 0,
            lane: LANE_RECOVERY,
            ordinal: trial.resumes,
            name: "recover:journal".to_string(),
            begin_ms: 0,
            end_ms: 0,
            status: 200,
            outcome: "ok".to_string(),
            provenance: String::new(),
            captcha_ms: 0,
        });
    }
    let mut crawler = match &state {
        Some(state) => build_resumed(lab, seed, workers, state, journal)?,
        None => build_fresh(lab, seed, workers, Some(journal))?,
    };
    let (digest, found) = drive(lab, &mut crawler)?;
    Ok((digest, found, crawler.effort()))
}

/// Kill the attacker at `kill` (a lifetime journal-record kill point,
/// optionally torn mid-frame), then restart it against the *same
/// still-running platform* and let it resume from the journal. Panics
/// on any failure that is not the injected kill.
pub fn killed_and_resumed(
    cfg: &ScenarioConfig,
    seed: u64,
    workers: usize,
    churn: f64,
    kill: KillPlan,
    path: &Path,
) -> KillTrial {
    killed_and_resumed_on(&crash_lab(cfg, churn), seed, workers, kill, path)
}

/// [`killed_and_resumed`] over a caller-held lab (span-level
/// inspection, or chaining several kills against one platform).
pub fn killed_and_resumed_on(
    lab: &Lab,
    seed: u64,
    workers: usize,
    kill: KillPlan,
    path: &Path,
) -> KillTrial {
    let _ = std::fs::remove_file(path);
    lab.obs.enable_tracing(CRASH_TRACE_CAP);
    let metrics = JournalMetrics::register(&lab.obs);
    let mut trial = KillTrial {
        kill_after: kill.after_records,
        completed_before_kill: false,
        resumes: 0,
        recovered_records: 0,
        discarded_records: 0,
        torn_bytes: 0,
        recovery_us: 0,
        outcome: CrashOutcome {
            found: 0,
            effort: Effort::default(),
            digest: 0,
            trace_digest: 0,
            journal_bytes: 0,
        },
    };
    let mut kill = Some(kill);
    loop {
        match attempt(lab, seed, workers, path, &metrics, kill.take(), &mut trial) {
            Ok((digest, found, effort)) => {
                trial.completed_before_kill = trial.resumes == 0;
                trial.outcome = CrashOutcome {
                    found,
                    effort,
                    digest,
                    trace_digest: lab.obs.tracer().digest_excluding(&[LANE_RECOVERY]),
                    journal_bytes: file_bytes(path),
                };
                return trial;
            }
            Err(CrawlError::BadPage("journal kill point")) => {
                // The "process" is dead; everything in memory is gone.
                // Only the journal file and the platform survive.
                trial.resumes += 1;
                assert!(trial.resumes <= 2, "kill plan must not fire after a resume");
            }
            Err(e) => panic!("crash trial died for a non-kill reason: {e:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hsp-crash-lab-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn journaling_never_changes_results() {
        let cfg = ScenarioConfig::tiny();
        let path = tmp("plain.journal");
        let bare = baseline(&cfg, 0xC4A5, 2, 1.0, None);
        let journaled = baseline(&cfg, 0xC4A5, 2, 1.0, Some(&path));
        assert_eq!(bare.digest, journaled.digest);
        assert_eq!(bare.effort, journaled.effort);
        assert_eq!(bare.trace_digest, journaled.trace_digest);
        assert!(journaled.journal_bytes > 0);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_under_chaos_and_churn() {
        let cfg = ScenarioConfig::tiny();
        let yardstick = baseline(&cfg, 0xC4A5, 2, 1.0, None);
        for (label, kill) in
            [("clean-cut", KillPlan::after(40)), ("torn-tail", KillPlan::torn(120, 7))]
        {
            let path = tmp(&format!("{label}.journal"));
            let trial = killed_and_resumed(&cfg, 0xC4A5, 2, 1.0, kill, &path);
            assert!(!trial.completed_before_kill, "{label}: kill point never fired");
            assert_eq!(trial.resumes, 1, "{label}");
            assert_eq!(trial.outcome.digest, yardstick.digest, "{label}: outcome digest drifted");
            assert_eq!(trial.outcome.effort, yardstick.effort, "{label}: effort ledger drifted");
            assert_eq!(
                trial.outcome.trace_digest, yardstick.trace_digest,
                "{label}: trace digest drifted"
            );
            assert!(trial.recovered_records > 0, "{label}");
        }
    }
}
