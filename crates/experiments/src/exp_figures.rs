//! Figure experiments: regenerate Figures 1–4.

use crate::asciiplot::Plot;
use crate::ctx::Ctx;
use crate::report::ExperimentReport;
use crate::runner::Lab;
use crate::tablefmt::{f1, Table};
use hsp_core::{
    evaluate, partial_estimate, run_basic, run_coppaless_heuristic, run_enhanced,
    score_minimal_set, CoppalessOptions, EnhanceOptions,
};
use hsp_policy::{FacebookPolicy, Policy};
use serde_json::json;
use std::sync::Arc;

/// Figure 1: HS1 enhanced+filtering — % found and % false positives
/// versus threshold t.
pub fn fig1(ctx: &mut Ctx) -> ExperimentReport {
    let truth = ctx.school("HS1").lab.ground_truth();
    let mut found_series = Vec::new();
    let mut fp_series = Vec::new();
    let mut table = Table::new(&["t", "% students found", "% false positives"]);
    let mut points_json = Vec::new();
    for t in (200..=500).step_by(25) {
        let sr = ctx.school_mut("HS1");
        let enhanced = run_enhanced(
            sr.run.access.as_mut(),
            &sr.run.discovery,
            &EnhanceOptions {
                t,
                filtering: true,
                enhance: true,
                school_city: sr.lab.scenario.home_city,
            },
        )
        .expect("enhanced");
        let guessed = enhanced.guessed_students(t);
        let point = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &sr.run.config), &truth);
        let pf = point.pct_found(truth.len());
        let pfp = point.pct_false_positives();
        found_series.push((t as f64, pf));
        fp_series.push((t as f64, pfp));
        if t % 50 == 0 {
            table.row(&[t.to_string(), f1(pf), f1(pfp)]);
        }
        points_json.push(json!({
            "t": t, "pct_found": pf, "pct_false_positives": pfp,
            "found": point.found, "false_positives": point.false_positives,
        }));
    }
    let plot = Plot::new("Figure 1: HS1, enhanced methodology with filtering", "top-t", "percent")
        .series("% students found", '*', found_series)
        .series("% false positives", 'o', fp_series);
    ExperimentReport::new(
        "fig1",
        "Overall performance of enhanced methodology for HS1",
        format!("{}\n{}", table.render(), plot.render()),
        json!({ "points": points_json, "roster": truth.len() }),
    )
}

/// Figure 2: HS2/HS3 with the §5.5 limited-ground-truth estimators.
pub fn fig2(ctx: &mut Ctx) -> ExperimentReport {
    let mut all_json = Vec::new();
    let mut text = String::new();
    let mut plot = Plot::new(
        "Figure 2: estimated performance for HS2 and HS3 (enhanced + filtering)",
        "top-t",
        "percent",
    );
    for (school, marker_found, marker_fp) in [("HS2", '*', 'o'), ("HS3", '#', 'x')] {
        // Second seed crawl with four *additional* accounts: the
        // held-out test users (claim current attendance, absent from the
        // first seed set).
        let (test_users, first_seeds) = {
            let sr = ctx.school_mut(school);
            let first_seeds: std::collections::HashSet<_> =
                sr.run.discovery.seeds.iter().copied().collect();
            let tcp = false;
            let mut second = sr.lab.crawler_mode(4, "second", tcp);
            let seeds2 = second.collect_seeds(sr.lab.scenario.school).expect("second crawl");
            let mut test_users = Vec::new();
            for &u in &seeds2 {
                if first_seeds.contains(&u) {
                    continue;
                }
                let p = second.profile(u).expect("profile");
                if p.claims_current_student(sr.lab.scenario.school, sr.run.config.senior_class_year)
                {
                    test_users.push(u);
                }
            }
            (test_users, first_seeds.len())
        };
        let sr = ctx.school_mut(school);
        let school_size = sr.lab.scenario.config.school_size as usize;
        let ext_core = sr.run.enhanced.extended_core.len();
        text.push_str(&format!(
            "{school}: {} test users from second crawl ({} first-crawl seeds); paper used {}.\n",
            test_users.len(),
            first_seeds,
            if school == "HS2" { 43 } else { 47 },
        ));
        let mut table = Table::new(&["t", "test found", "est % found", "est % FP"]);
        let mut found_pts = Vec::new();
        let mut fp_pts = Vec::new();
        let mut points_json = Vec::new();
        for t in (500..=2000).step_by(250) {
            let enhanced = run_enhanced(
                sr.run.access.as_mut(),
                &sr.run.discovery,
                &EnhanceOptions {
                    t,
                    filtering: true,
                    enhance: true,
                    school_city: sr.lab.scenario.home_city,
                },
            )
            .expect("enhanced");
            let guessed = enhanced.guessed_students(t);
            let z = test_users.iter().filter(|u| guessed.binary_search(u).is_ok()).count();
            let est = partial_estimate(t, z, test_users.len().max(1), ext_core, school_size);
            table.row(&[
                t.to_string(),
                format!("{z}/{}", test_users.len()),
                f1(est.est_pct_found),
                f1(est.est_pct_false_positives),
            ]);
            found_pts.push((t as f64, est.est_pct_found));
            fp_pts.push((t as f64, est.est_pct_false_positives));
            points_json.push(serde_json::to_value(est).expect("serializable"));
        }
        plot = plot.series(&format!("{school} % found"), marker_found, found_pts).series(
            &format!("{school} % FP"),
            marker_fp,
            fp_pts,
        );
        text.push_str(&table.render());
        text.push('\n');
        all_json.push(
            json!({ "school": school, "test_users": test_users.len(), "points": points_json }),
        );
    }
    text.push_str(&plot.render());
    ExperimentReport::new(
        "fig2",
        "Overall performance of enhanced methodology for HS2 and HS3 (§5.5 estimators)",
        text,
        json!({ "schools": all_json }),
    )
}

/// Figure 3: with-COPPA vs without-COPPA false positives against
/// minimal-profile students found (HS1).
pub fn fig3(ctx: &mut Ctx) -> ExperimentReport {
    // Ground-truth minimal-profile students (the paper's 148 of 325).
    let minimal_students: Vec<hsp_graph::UserId> = {
        let sr = ctx.school("HS1");
        let policy = FacebookPolicy::new();
        let mut v: Vec<_> = sr
            .lab
            .scenario
            .roster()
            .into_iter()
            .filter(|&u| policy.stranger_view(&sr.lab.scenario.network, u).is_minimal())
            .collect();
        v.sort_unstable();
        v
    };
    let mut text = format!(
        "HS1 minimal-profile ground-truth students: {} (paper: 148 of 325)\n\n",
        minimal_students.len()
    );
    let mut with_points = Vec::new();
    let mut table = Table::new(&["world", "param", "minimal found", "% found", "false positives"]);
    // --- with-COPPA: minimal-profile members of the top-t ---------------
    for t in [300usize, 400, 500] {
        let sr = ctx.school_mut("HS1");
        let guessed = sr.run.enhanced.guessed_students(t);
        let mut minimal_guessed = Vec::new();
        for &u in &guessed {
            let p = sr.run.access.profile(u).expect("profile");
            if p.is_minimal() {
                minimal_guessed.push(u);
            }
        }
        minimal_guessed.sort_unstable();
        let point = score_minimal_set(t, &minimal_guessed, &minimal_students);
        table.row(&[
            "with-COPPA".into(),
            format!("t={t}"),
            point.found.to_string(),
            f1(point.pct_found),
            point.false_positives.to_string(),
        ]);
        with_points.push(point);
    }
    // --- without-COPPA heuristic on the same data (paper §7.2) -----------
    let mut without_points = Vec::new();
    {
        let sr = ctx.school_mut("HS1");
        for n in [1u32, 2, 3] {
            let run = run_coppaless_heuristic(
                sr.run.access.as_mut(),
                &sr.run.config,
                &CoppalessOptions { alumni_years_back: 2, min_core_friends: n },
            )
            .expect("coppaless heuristic");
            let point = score_minimal_set(n as usize, &run.guessed, &minimal_students);
            table.row(&[
                "without-COPPA".into(),
                format!("n={n} ({} alumni cores)", run.core.len()),
                point.found.to_string(),
                f1(point.pct_found),
                point.false_positives.to_string(),
            ]);
            without_points.push(point);
        }
    }
    // --- extension: a truly regenerated COPPA-less world -----------------
    let mut regen_points = Vec::new();
    {
        let cfg = Ctx::config_for("HS1").without_coppa();
        let lab = Lab::facebook(&cfg);
        let config = lab.attack_config();
        let policy = FacebookPolicy::new();
        let mut regen_minimal: Vec<_> = lab
            .scenario
            .roster()
            .into_iter()
            .filter(|&u| policy.stranger_view(&lab.scenario.network, u).is_minimal())
            .collect();
        regen_minimal.sort_unstable();
        let mut access = lab.crawler(2, "regen");
        for n in [1u32, 2, 3] {
            let run = run_coppaless_heuristic(
                access.as_mut(),
                &config,
                &CoppalessOptions { alumni_years_back: 2, min_core_friends: n },
            )
            .expect("regen heuristic");
            let point = score_minimal_set(n as usize, &run.guessed, &regen_minimal);
            table.row(&[
                "without-COPPA (regenerated world)".into(),
                format!("n={n}"),
                point.found.to_string(),
                f1(point.pct_found),
                point.false_positives.to_string(),
            ]);
            regen_points.push(point);
        }
    }
    text.push_str(&table.render());
    let plot = Plot::new(
        "Figure 3: false positives (log) vs % of minimal-profile students found",
        "% students found",
        "false positives",
    )
    .log_y()
    .series(
        "with-COPPA",
        '*',
        with_points.iter().map(|p| (p.pct_found, p.false_positives.max(1) as f64)).collect(),
    )
    .series(
        "without-COPPA",
        'o',
        without_points.iter().map(|p| (p.pct_found, p.false_positives.max(1) as f64)).collect(),
    );
    text.push('\n');
    text.push_str(&plot.render());
    ExperimentReport::new(
        "fig3",
        "With-COPPA vs without-COPPA false positives (HS1)",
        text,
        json!({
            "minimal_students": minimal_students.len(),
            "with": with_points,
            "without": without_points,
            "without_regenerated": regen_points,
        }),
    )
}

/// Figure 4: % of HS1 students found with and without reverse lookup.
pub fn fig4(ctx: &mut Ctx) -> ExperimentReport {
    let (scenario, truth) = {
        let sr = ctx.school("HS1");
        (sr.lab.scenario.clone(), sr.lab.ground_truth())
    };
    let mut table = Table::new(&["t", "% found (with RL)", "% found (without RL)"]);
    let mut series_with = Vec::new();
    let mut series_without = Vec::new();
    let mut points_json = Vec::new();

    // Countermeasure lab: same world, reverse lookup disabled.
    let mut lab_without =
        Lab::from_scenario(scenario, Arc::new(FacebookPolicy::without_reverse_lookup()));
    let tcp = ctx.tcp;
    let mut access_without = lab_without.crawler_mode(2, "cm", tcp);
    let config = lab_without.attack_config();
    let discovery_without =
        run_basic(access_without.as_mut(), &config).expect("countermeasure basic");

    for t in (200..=500).step_by(50) {
        // With reverse lookup (standard pipeline, cached).
        let pct_with = {
            let sr = ctx.school_mut("HS1");
            let enhanced = run_enhanced(
                sr.run.access.as_mut(),
                &sr.run.discovery,
                &EnhanceOptions {
                    t,
                    filtering: true,
                    enhance: true,
                    school_city: sr.lab.scenario.home_city,
                },
            )
            .expect("enhanced");
            let guessed = enhanced.guessed_students(t);
            evaluate(t, &guessed, |u| enhanced.inferred_year(u, &sr.run.config), &truth)
                .pct_found(truth.len())
        };
        // Without reverse lookup.
        let pct_without = {
            let enhanced = run_enhanced(
                access_without.as_mut(),
                &discovery_without,
                &EnhanceOptions {
                    t,
                    filtering: true,
                    enhance: true,
                    school_city: lab_without.scenario.home_city,
                },
            )
            .expect("countermeasure enhanced");
            let guessed = enhanced.guessed_students(t);
            evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth)
                .pct_found(truth.len())
        };
        table.row(&[t.to_string(), f1(pct_with), f1(pct_without)]);
        series_with.push((t as f64, pct_with));
        series_without.push((t as f64, pct_without));
        points_json.push(json!({ "t": t, "with": pct_with, "without": pct_without }));
    }
    let plot = Plot::new(
        "Figure 4: % of HS1 students found, with vs without reverse lookup",
        "top-t",
        "% found",
    )
    .series("with reverse lookup", '*', series_with)
    .series("without reverse lookup", 'o', series_without);
    ExperimentReport::new(
        "fig4",
        "Countermeasure: disabling reverse lookup (paper: top-500 drops 92% → 33%)",
        format!("{}\n{}", table.render(), plot.render()),
        json!({ "points": points_json }),
    )
}
