//! Experiment output container.

use serde::Serialize;

/// One experiment's rendered output plus a JSON artifact.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentReport {
    /// Stable id, e.g. "table4" or "fig2".
    pub id: String,
    pub title: String,
    /// Human-readable rendering (tables/plots).
    pub text: String,
    /// Machine-readable results.
    pub json: serde_json::Value,
}

impl ExperimentReport {
    pub fn new(id: &str, title: &str, text: String, json: serde_json::Value) -> Self {
        ExperimentReport { id: id.to_string(), title: title.to_string(), text, json }
    }

    /// Full printable block.
    pub fn printable(&self) -> String {
        format!("==== {} — {} ====\n{}\n", self.id.to_uppercase(), self.title, self.text)
    }
}
