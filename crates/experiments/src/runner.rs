//! Shared experiment plumbing: build a world, serve it, attack it.
//!
//! Every lab carries an [`hsp_obs::Registry`] shared by the platform
//! handlers, the loopback HTTP server and the crawler, and the runner
//! wraps the experiment phases — generate → serve → crawl → infer →
//! evaluate — in spans recorded under `experiment_phase_us{phase=...}`.

use hsp_core::{
    evaluate, run_basic, run_enhanced, AttackConfig, Discovery, EnhanceOptions, Enhanced,
    EvalPoint, GroundTruth,
};
use hsp_crawler::{AccountSeat, AdaptiveStrategy, Crawler, OsnAccess, ParallelCrawler, Politeness};
use hsp_http::{
    ChaosPlan, ChaosStats, ChaosTransport, Client, DirectExchange, Handler, ResilientExchange,
    RetryPolicy, RetryStats, Server, ServerConfig,
};
use hsp_obs::{Registry, SpanGuard, VirtualClock};
use hsp_platform::{DefenseConfig, FaultPlan, MutationPlan, Platform, PlatformConfig};
use hsp_policy::{FacebookPolicy, Policy};
use hsp_synth::{generate, ChurnModel, Scenario, ScenarioConfig};
use std::sync::Arc;

/// Scoped timer for one experiment phase, recorded on `reg` under
/// `experiment_phase_us{phase="<name>"}`.
pub fn phase_span(reg: &Registry, phase: &str) -> SpanGuard {
    SpanGuard::new(reg.histogram_with("experiment_phase_us", &[("phase", phase)]))
}

/// A generated world mounted on a platform, ready to be attacked.
pub struct Lab {
    pub scenario: Scenario,
    pub platform: Arc<Platform>,
    /// Registry shared by platform, server and crawlers of this lab.
    pub obs: Arc<Registry>,
    handler: Arc<dyn Handler>,
    server: Option<Server>,
}

impl Lab {
    /// Build with the standard Facebook policy.
    pub fn facebook(cfg: &ScenarioConfig) -> Lab {
        Self::with_policy(cfg, Arc::new(FacebookPolicy::new()))
    }

    /// [`Lab::facebook`] recording into an existing registry.
    pub fn facebook_with_registry(cfg: &ScenarioConfig, obs: Arc<Registry>) -> Lab {
        Self::with_policy_and_registry(cfg, Arc::new(FacebookPolicy::new()), obs)
    }

    /// [`Lab::facebook`] with a hostile platform: the given fault plan
    /// is armed on an otherwise-default configuration. Pair it with
    /// [`Lab::resilient_crawler`] — a plain crawler will not survive.
    pub fn facebook_chaotic(cfg: &ScenarioConfig, plan: FaultPlan) -> Lab {
        Self::facebook_configured(cfg, PlatformConfig { faults: plan, ..PlatformConfig::default() })
    }

    /// [`Lab::facebook`] with the sybil detector armed (see
    /// `hsp_defense`): behavioral scoring on every stranger-facing
    /// route, escalating CAPTCHA → throttle → suspension per
    /// `defense.strength`. `DetectorStrength::Off` yields a platform
    /// bit-identical to [`Lab::facebook`].
    pub fn facebook_defended(cfg: &ScenarioConfig, defense: DefenseConfig) -> Lab {
        Self::facebook_configured(cfg, PlatformConfig { defense, ..PlatformConfig::default() })
    }

    /// [`Lab::facebook`] over a *live* world: the mutation engine armed
    /// with the scenario's own [`ChurnModel`] scaled by `factor`.
    /// `factor == 0.0` produces a frozen plan (empty schedule, no
    /// rollover), which the platform serves byte-identically to
    /// [`Lab::facebook`] — the zero-rate equivalence gate.
    pub fn facebook_live(cfg: &ScenarioConfig, factor: f64) -> Lab {
        Self::facebook_configured(
            cfg,
            PlatformConfig {
                mutations: Self::churn_plan(cfg, factor),
                ..PlatformConfig::default()
            },
        )
    }

    /// Glue [`ChurnModel`] → [`MutationPlan`]: the scenario's derived
    /// per-mille rates scaled by `factor`, on the canonical live
    /// horizon (2 h of virtual time, one graduation rollover at 1 h —
    /// dropped entirely at `factor == 0.0` so the schedule is empty).
    pub fn churn_plan(cfg: &ScenarioConfig, factor: f64) -> MutationPlan {
        let churn = ChurnModel::from_scenario(cfg).scaled(factor);
        MutationPlan {
            enabled: true,
            horizon_ms: 7_200_000,
            signup_per_mille: churn.signup_per_mille,
            friend_per_mille: churn.friend_per_mille,
            defriend_per_mille: churn.defriend_per_mille,
            privacy_flip_per_mille: churn.privacy_flip_per_mille,
            deactivate_per_mille: churn.deactivate_per_mille,
            rollover_at_ms: if factor == 0.0 { Vec::new() } else { vec![3_600_000] },
            ..MutationPlan::default()
        }
    }

    /// [`Lab::facebook`] over a fully caller-specified
    /// [`PlatformConfig`] (fault plan, defense, rate limits, ...).
    pub fn facebook_configured(cfg: &ScenarioConfig, config: PlatformConfig) -> Lab {
        let scenario = generate(cfg);
        let obs = Registry::shared();
        let platform = Platform::with_registry(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            config,
            Arc::clone(&obs),
        );
        let handler = platform.into_handler();
        Lab { scenario, platform, obs, handler, server: None }
    }

    /// Build with an explicit policy engine.
    pub fn with_policy(cfg: &ScenarioConfig, policy: Arc<dyn Policy>) -> Lab {
        Self::with_policy_and_registry(cfg, policy, Registry::shared())
    }

    pub fn with_policy_and_registry(
        cfg: &ScenarioConfig,
        policy: Arc<dyn Policy>,
        obs: Arc<Registry>,
    ) -> Lab {
        let scenario = {
            let _span = phase_span(&obs, "generate");
            let started = std::time::Instant::now();
            let scenario = generate(cfg);
            let us = started.elapsed().as_micros().max(1);
            let rate = scenario.network.user_count() as u128 * 1_000_000 / us;
            obs.gauge("synth_users_per_sec").set(rate as i64);
            scenario
        };
        Self::from_scenario_with_registry(scenario, policy, obs)
    }

    /// Mount an already-generated scenario (reuse across policy variants).
    pub fn from_scenario(scenario: Scenario, policy: Arc<dyn Policy>) -> Lab {
        Self::from_scenario_with_registry(scenario, policy, Registry::shared())
    }

    pub fn from_scenario_with_registry(
        scenario: Scenario,
        policy: Arc<dyn Policy>,
        obs: Arc<Registry>,
    ) -> Lab {
        let platform = Platform::with_registry(
            Arc::new(scenario.network.clone()),
            policy,
            PlatformConfig::default(),
            Arc::clone(&obs),
        );
        let handler = platform.into_handler();
        Lab { scenario, platform, obs, handler, server: None }
    }

    /// Start a real loopback HTTP server for this lab (TCP mode),
    /// wired into the lab's registry.
    pub fn serve(&mut self) -> std::io::Result<std::net::SocketAddr> {
        let _span = phase_span(&self.obs, "serve");
        let config = ServerConfig {
            metrics: Some(Arc::clone(&self.obs)),
            thread_name_prefix: "hsp-lab".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(self.handler.clone(), config)?;
        let addr = server.addr();
        self.server = Some(server);
        Ok(addr)
    }

    /// Like [`Lab::serve`] but with a caller-supplied (typically
    /// overload-hardened) [`ServerConfig`]; the lab still wires its own
    /// registry and thread-name prefix in.
    pub fn serve_hardened(
        &mut self,
        config: ServerConfig,
    ) -> std::io::Result<std::net::SocketAddr> {
        let _span = phase_span(&self.obs, "serve");
        let config = ServerConfig {
            metrics: Some(Arc::clone(&self.obs)),
            thread_name_prefix: "hsp-lab".to_string(),
            ..config
        };
        let server = Server::start_with(self.handler.clone(), config)?;
        let addr = server.addr();
        self.server = Some(server);
        Ok(addr)
    }

    /// The running loopback server, if [`Lab::serve`] (or
    /// [`Lab::serve_hardened`]) was called — e.g. to begin a graceful
    /// drain from a soak harness.
    pub fn server(&self) -> Option<&Server> {
        self.server.as_ref()
    }

    /// Stop serving: take the server out of the lab and shut it down
    /// gracefully, returning once every worker has been joined.
    pub fn stop_serving(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    /// An in-process crawler with `accounts` fake accounts.
    pub fn crawler(&self, accounts: usize, label: &str) -> Box<dyn OsnAccess> {
        let exchanges: Vec<DirectExchange> =
            (0..accounts).map(|_| DirectExchange::new(self.handler.clone())).collect();
        Box::new(
            Crawler::with_observability(exchanges, label, Politeness::default(), &self.obs)
                .expect("crawler setup"),
        )
    }

    /// An in-process crawler hardened for a chaotic platform: every
    /// account's exchange is wrapped in a [`ResilientExchange`]
    /// (deadlines, classification, jittered backoff) sharing the
    /// platform's virtual clock and one retry-stats block, and the
    /// crawler recruits replacement accounts on suspension (the paper's
    /// 2→4→8 escalation). Fully deterministic for a fixed `seed`.
    pub fn resilient_crawler(&self, accounts: usize, label: &str, seed: u64) -> Box<dyn OsnAccess> {
        let clock = Arc::clone(&self.platform.clock);
        let stats = Arc::new(RetryStats::default());
        let wrap = {
            let handler = self.handler.clone();
            let clock = Arc::clone(&clock);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                ResilientExchange::with_stats(
                    DirectExchange::new(handler.clone()),
                    RetryPolicy::seeded(seed ^ i),
                    Arc::clone(&clock),
                    Arc::clone(&stats),
                )
                .with_tracer(Arc::clone(&tracer))
            }
        };
        let exchanges: Vec<_> = (0..accounts as u64).map(&wrap).collect();
        let mut next = accounts as u64;
        let factory = {
            let wrap = wrap;
            move || {
                next += 1;
                wrap(next)
            }
        };
        Box::new(
            Crawler::builder(label)
                .observability(&self.obs)
                .clock(clock)
                .retry_stats(stats)
                .recruit_with(factory, 8)
                .build(exchanges)
                .expect("resilient crawler setup"),
        )
    }

    /// [`Lab::resilient_crawler`] with caller-specified politeness —
    /// the crawl-duration axis of the freshness experiment: slower
    /// pacing means more virtual time elapses mid-crawl, so a live
    /// world drifts further from what the crawl has already recorded.
    pub fn paced_crawler(
        &self,
        accounts: usize,
        label: &str,
        seed: u64,
        politeness: Politeness,
    ) -> Box<dyn OsnAccess> {
        let clock = Arc::clone(&self.platform.clock);
        let stats = Arc::new(RetryStats::default());
        let wrap = {
            let handler = self.handler.clone();
            let clock = Arc::clone(&clock);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                ResilientExchange::with_stats(
                    DirectExchange::new(handler.clone()),
                    RetryPolicy::seeded(seed ^ i),
                    Arc::clone(&clock),
                    Arc::clone(&stats),
                )
                .with_tracer(Arc::clone(&tracer))
            }
        };
        let exchanges: Vec<_> = (0..accounts as u64).map(&wrap).collect();
        let mut next = accounts as u64;
        let factory = {
            let wrap = wrap;
            move || {
                next += 1;
                wrap(next)
            }
        };
        Box::new(
            Crawler::builder(label)
                .observability(&self.obs)
                .clock(clock)
                .retry_stats(stats)
                .politeness(politeness)
                .recruit_with(factory, 8)
                .build(exchanges)
                .expect("paced crawler setup"),
        )
    }

    /// The arms-race attacker: [`Lab::resilient_crawler`] with a deeper
    /// recruitment bench (the sybil answer to suspensions is more
    /// sybils — cap 64 instead of 8) and, optionally, the adaptive
    /// evasion strategy (seeded politeness jitter, account warm-up,
    /// decoy mimicry). With `adaptive = None` the request stream is
    /// identical to [`Lab::resilient_crawler`]'s, so an
    /// [`hsp_platform::DetectorStrength::Off`] platform reproduces the
    /// baseline attack bit-for-bit.
    pub fn arms_race_crawler(
        &self,
        accounts: usize,
        label: &str,
        seed: u64,
        adaptive: Option<AdaptiveStrategy>,
    ) -> Box<dyn OsnAccess> {
        let clock = Arc::clone(&self.platform.clock);
        let stats = Arc::new(RetryStats::default());
        let wrap = {
            let handler = self.handler.clone();
            let clock = Arc::clone(&clock);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                ResilientExchange::with_stats(
                    DirectExchange::new(handler.clone()),
                    RetryPolicy::seeded(seed ^ i),
                    Arc::clone(&clock),
                    Arc::clone(&stats),
                )
                .with_tracer(Arc::clone(&tracer))
            }
        };
        let exchanges: Vec<_> = (0..accounts as u64).map(&wrap).collect();
        let mut next = accounts as u64;
        let factory = {
            let wrap = wrap;
            move || {
                next += 1;
                wrap(next)
            }
        };
        let mut builder = Crawler::builder(label)
            .observability(&self.obs)
            .clock(clock)
            .retry_stats(stats)
            .recruit_with(factory, 64);
        if let Some(strategy) = adaptive {
            builder = builder.adaptive(strategy);
        }
        Box::new(builder.build(exchanges).expect("arms-race crawler setup"))
    }

    /// [`Lab::resilient_crawler`] with a deterministic [`ChaosTransport`]
    /// spliced *beneath* the retry layer: every account's wire is
    /// independently hostile (seeded per account from `seed`), all
    /// injections fold into one shared [`ChaosStats`] audit block, and
    /// the shared [`RetryStats`] is returned alongside so a soak can
    /// reconcile what the transport destroyed against what the retry
    /// layer absorbed.
    #[allow(clippy::type_complexity)]
    pub fn resilient_chaos_crawler(
        &self,
        accounts: usize,
        label: &str,
        seed: u64,
        plan: &ChaosPlan,
    ) -> (
        Crawler<ResilientExchange<ChaosTransport<DirectExchange>>>,
        Arc<ChaosStats>,
        Arc<RetryStats>,
    ) {
        let handler = self.handler.clone();
        self.chaos_crawler_with(accounts, label, seed, plan, move || {
            DirectExchange::new(handler.clone())
        })
    }

    /// [`Lab::resilient_chaos_crawler`] over real loopback TCP
    /// (requires [`Lab::serve`] / [`Lab::serve_hardened`]): chaos on the
    /// wire *and* a real overloadable server underneath.
    #[allow(clippy::type_complexity)]
    pub fn tcp_chaos_crawler(
        &self,
        accounts: usize,
        label: &str,
        seed: u64,
        plan: &ChaosPlan,
    ) -> (Crawler<ResilientExchange<ChaosTransport<Client>>>, Arc<ChaosStats>, Arc<RetryStats>)
    {
        let addr = self.server.as_ref().expect("call serve() before tcp_chaos_crawler()").addr();
        self.chaos_crawler_with(accounts, label, seed, plan, move || Client::new(addr))
    }

    #[allow(clippy::type_complexity)]
    fn chaos_crawler_with<T: hsp_http::Exchange + 'static>(
        &self,
        accounts: usize,
        label: &str,
        seed: u64,
        plan: &ChaosPlan,
        transport: impl Fn() -> T + 'static,
    ) -> (Crawler<ResilientExchange<ChaosTransport<T>>>, Arc<ChaosStats>, Arc<RetryStats>) {
        let clock = Arc::clone(&self.platform.clock);
        let chaos_stats = Arc::new(ChaosStats::default());
        let retry_stats = Arc::new(RetryStats::default());
        let wrap = {
            let plan = plan.clone();
            let clock = Arc::clone(&clock);
            let chaos_stats = Arc::clone(&chaos_stats);
            let retry_stats = Arc::clone(&retry_stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                let chaotic = ChaosTransport::with_stats(
                    transport(),
                    plan.with_seed(plan.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    Arc::clone(&clock),
                    Arc::clone(&chaos_stats),
                )
                .with_tracer(Arc::clone(&tracer));
                ResilientExchange::with_stats(
                    chaotic,
                    RetryPolicy::seeded(seed ^ i),
                    Arc::clone(&clock),
                    Arc::clone(&retry_stats),
                )
                .with_tracer(Arc::clone(&tracer))
            }
        };
        let exchanges: Vec<_> = (0..accounts as u64).map(&wrap).collect();
        let mut next = accounts as u64;
        let factory = {
            let wrap = wrap;
            move || {
                next += 1;
                wrap(next)
            }
        };
        let crawler = Crawler::builder(label)
            .observability(&self.obs)
            .clock(clock)
            .retry_stats(Arc::clone(&retry_stats))
            .recruit_with(factory, 8)
            .build(exchanges)
            .expect("chaos crawler setup");
        (crawler, chaos_stats, retry_stats)
    }

    /// The parallel attack crawler: the same resilient per-account
    /// transport as [`Lab::resilient_crawler`], but driven by the
    /// work-stealing scheduler with `workers` OS threads. Every account
    /// seat carries its *own* virtual clock (backoff/deadline time is
    /// per-account state, so one account's retries never shift
    /// another's timeline), and recruitment stays available for
    /// suspension failover. Results are bit-identical at any `workers`
    /// value; only wall-clock changes.
    pub fn parallel_crawler(
        &self,
        accounts: usize,
        workers: usize,
        label: &str,
        seed: u64,
    ) -> ParallelCrawler<ResilientExchange<DirectExchange>> {
        let stats = Arc::new(RetryStats::default());
        let seat = {
            let handler = self.handler.clone();
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(self.obs.tracer());
            move |i: u64| {
                let clock = VirtualClock::shared();
                AccountSeat {
                    exchange: ResilientExchange::with_stats(
                        DirectExchange::new(handler.clone()),
                        RetryPolicy::seeded(seed ^ i),
                        Arc::clone(&clock),
                        Arc::clone(&stats),
                    )
                    .with_tracer(Arc::clone(&tracer)),
                    clock: Some(clock),
                }
            }
        };
        let seats: Vec<_> = (0..accounts as u64).map(&seat).collect();
        let mut next = accounts as u64;
        let factory = {
            let seat = seat;
            move || {
                next += 1;
                seat(next)
            }
        };
        ParallelCrawler::builder(label)
            .workers(workers)
            .observability(&self.obs)
            .retry_stats(stats)
            .recruit_with(factory, 8)
            .build(seats)
            .expect("parallel crawler setup")
    }

    /// A crawler over real loopback TCP (requires [`Lab::serve`]).
    pub fn tcp_crawler(&self, accounts: usize, label: &str) -> Box<dyn OsnAccess> {
        let addr = self.server.as_ref().expect("call serve() before tcp_crawler()").addr();
        let exchanges: Vec<Client> = (0..accounts).map(|_| Client::new(addr)).collect();
        Box::new(
            Crawler::with_observability(exchanges, label, Politeness::default(), &self.obs)
                .expect("tcp crawler setup"),
        )
    }

    /// A crawler honouring `tcp` (serving lazily on first use).
    pub fn crawler_mode(&mut self, accounts: usize, label: &str, tcp: bool) -> Box<dyn OsnAccess> {
        if tcp {
            if self.server.is_none() {
                self.serve().expect("bind loopback server");
            }
            self.tcp_crawler(accounts, label)
        } else {
            self.crawler(accounts, label)
        }
    }

    /// The platform handler (sibling harnesses build custom transports).
    pub(crate) fn handler(&self) -> Arc<dyn Handler> {
        self.handler.clone()
    }

    /// The attacker's configuration for the target school.
    pub fn attack_config(&self) -> AttackConfig {
        AttackConfig::new(
            self.scenario.school,
            self.scenario.network.senior_class_year(),
            self.scenario.config.public_enrollment_estimate,
        )
    }

    /// Ground truth for scoring.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth::from_scenario(&self.scenario)
    }

    /// The paper's per-school account counts: 2 for HS1, 4 for the
    /// larger schools.
    pub fn paper_account_count(&self) -> usize {
        if self.scenario.config.school_size <= 500 {
            2
        } else {
            4
        }
    }
}

/// A basic + enhanced attack run with its artifacts.
pub struct AttackRun {
    pub config: AttackConfig,
    pub discovery: Discovery,
    pub enhanced: Enhanced,
    pub effort_basic: hsp_crawler::Effort,
    pub effort_total: hsp_crawler::Effort,
    pub access: Box<dyn OsnAccess>,
}

/// Run basic then enhanced(+filtering) with the paper's parameters.
pub fn full_attack(lab: &mut Lab, tcp: bool) -> AttackRun {
    let accounts = lab.paper_account_count();
    let access = lab.crawler_mode(accounts, "atk", tcp);
    full_attack_with(lab, access)
}

/// [`full_attack`] over a caller-supplied access layer (e.g. a
/// [`Lab::resilient_crawler`] for chaos runs).
pub fn full_attack_with(lab: &Lab, mut access: Box<dyn OsnAccess>) -> AttackRun {
    let config = lab.attack_config();
    let discovery = {
        let _span = phase_span(&lab.obs, "crawl");
        run_basic(access.as_mut(), &config).expect("basic methodology")
    };
    let effort_basic = access.effort();
    let t = config.school_size_estimate as usize;
    let enhanced = {
        let _span = phase_span(&lab.obs, "infer");
        run_enhanced(
            access.as_mut(),
            &discovery,
            &EnhanceOptions {
                t,
                filtering: true,
                enhance: true,
                school_city: lab.scenario.home_city,
            },
        )
        .expect("enhanced methodology")
    };
    let effort_total = access.effort();
    AttackRun { config, discovery, enhanced, effort_basic, effort_total, access }
}

/// Evaluate a guessed set for one threshold.
pub fn eval_at(
    t: usize,
    guessed: &[hsp_graph::UserId],
    inferred: impl Fn(hsp_graph::UserId) -> Option<i32>,
    truth: &GroundTruth,
) -> EvalPoint {
    evaluate(t, guessed, inferred, truth)
}

/// [`eval_at`] with the "evaluate" phase recorded on `reg`.
pub fn eval_at_observed(
    reg: &Registry,
    t: usize,
    guessed: &[hsp_graph::UserId],
    inferred: impl Fn(hsp_graph::UserId) -> Option<i32>,
    truth: &GroundTruth,
) -> EvalPoint {
    let _span = phase_span(reg, "evaluate");
    evaluate(t, guessed, inferred, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_and_runs_tiny_attack() {
        let mut lab = Lab::facebook(&ScenarioConfig::tiny());
        let run = full_attack(&mut lab, false);
        assert!(!run.discovery.core.is_empty());
        assert!(run.effort_total.total() > run.effort_basic.total());
        let truth = lab.ground_truth();
        let t = run.config.school_size_estimate as usize;
        let point = eval_at(
            t,
            &run.enhanced.guessed_students(t),
            |u| run.enhanced.inferred_year(u, &run.config),
            &truth,
        );
        assert!(point.found > 0);
    }

    #[test]
    fn tcp_and_direct_crawlers_agree_on_seeds() {
        let mut lab = Lab::facebook(&ScenarioConfig::tiny());
        let school = lab.scenario.school;
        let mut direct = lab.crawler(2, "d");
        let direct_seeds = direct.collect_seeds(school).unwrap();
        lab.serve().unwrap();
        let mut tcp = lab.tcp_crawler(2, "t");
        let tcp_seeds = tcp.collect_seeds(school).unwrap();
        // Account-keyed sampling depends on account *index*, which both
        // crawlers share (fresh platform sessions), so the seed sets —
        // after the union across two accounts — must agree... they use
        // different account names but the same indices.
        assert_eq!(direct_seeds, tcp_seeds);
    }
}
