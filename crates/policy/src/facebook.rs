//! Facebook's 2012-era privacy policy for strangers, per paper §3.1.
//!
//! Two mechanisms are modelled exactly as the paper describes:
//!
//! 1. **Registered-minor hard cap**: "when a stranger visits a registered
//!    minor's profile page, only a limited amount of information is
//!    available ... at most the user's name, profile photo, networks
//!    joined, and gender ... the Message button will never be visible"
//!    — regardless of the minor's own settings.
//! 2. **Search exclusion**: "Facebook does not return any registered
//!    minors when a stranger searches with the Find Friends Portal \[or\]
//!    Graph Search".
//!
//! Registered adults get whatever their per-field audiences allow.

use crate::policy::Policy;
use crate::view::PublicView;
use hsp_graph::{Audience, Network, SchoolId, UserId};

/// The Facebook policy engine.
#[derive(Clone, Debug)]
pub struct FacebookPolicy {
    /// The §8 countermeasure switch: when `false`, users whose friend
    /// list is hidden from strangers are also omitted from *other*
    /// users' stranger-visible friend lists (no reverse lookup).
    pub reverse_lookup: bool,
}

impl Default for FacebookPolicy {
    fn default() -> Self {
        FacebookPolicy { reverse_lookup: true }
    }
}

impl FacebookPolicy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Facebook with the reverse-lookup countermeasure deployed (§8).
    pub fn without_reverse_lookup() -> Self {
        FacebookPolicy { reverse_lookup: false }
    }
}

impl Policy for FacebookPolicy {
    fn name(&self) -> &'static str {
        "facebook"
    }

    fn stranger_view(&self, net: &Network, target: UserId) -> PublicView {
        let user = net.user(target);
        let p = &user.profile;
        // Row 1 of Table 1 is available for everyone.
        let mut view = PublicView::minimal(
            target,
            p.full_name(),
            Some(p.gender),
            p.has_profile_photo,
            p.networks.clone(),
        );
        if user.is_registered_minor(net.today) {
            // Hard cap: nothing else, no matter the settings.
            return view;
        }
        let s = &user.privacy;
        if s.education.visible_to_stranger() {
            view.education = p.education.clone();
        }
        if s.hometown.visible_to_stranger() {
            view.hometown = p.hometown;
        }
        if s.current_city.visible_to_stranger() {
            view.current_city = p.current_city;
        }
        if s.relationship.visible_to_stranger() {
            view.relationship = p.relationship;
        }
        if s.interested_in.visible_to_stranger() {
            view.interested_in = p.interested_in;
        }
        if s.birthday.visible_to_stranger() {
            view.birthday = Some(user.registration.registered_birth_date);
        }
        view.friend_list_visible = s.friend_list.visible_to_stranger();
        if s.photos.visible_to_stranger() {
            view.photos_shared = Some(p.photos_shared);
        }
        if s.wall.visible_to_stranger() {
            view.wall_posts = Some(p.wall_posts);
            view.wall_posters = net.interactions().top_partners(target, 10);
        }
        if s.contact_info.visible_to_stranger() && !p.contact.is_empty() {
            view.contact = Some(p.contact.clone());
        }
        // A true stranger is not a friend-of-friend, so only a public
        // audience exposes the Message button.
        view.message_button = s.message_button == Audience::Public;
        view
    }

    fn searchable_by_school(&self, net: &Network, user: UserId, school: SchoolId) -> bool {
        let u = net.user(user);
        // Registered minors are never returned.
        if u.is_registered_minor(net.today) {
            return false;
        }
        // The account must be discoverable at all.
        if !u.privacy.public_search {
            return false;
        }
        // Association with the school must be stranger-visible: either a
        // public education entry naming it, or a joined school network.
        let lists_it = u.privacy.education.visible_to_stranger()
            && u.profile.education.iter().any(|e| e.school == school);
        let networked = u.profile.networks.contains(&school);
        lists_it || networked
    }

    fn friend_list_stranger_visible(&self, net: &Network, user: UserId) -> bool {
        self.stranger_view(net, user).friend_list_visible
    }

    fn reverse_lookup_enabled(&self) -> bool {
        self.reverse_lookup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::{
        Date, EducationEntry, Gender, PrivacySettings, ProfileContent, Registration, Role, School,
        SchoolKind, User,
    };

    fn network_with(privacy: PrivacySettings, registered_birth: Date) -> (Network, UserId) {
        let mut net = Network::new(Date::ymd(2012, 3, 15));
        let city = net.add_city("Springfield", "NY");
        let school = net.add_school(School {
            id: SchoolId(0),
            name: "HS1".into(),
            city,
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 360,
        });
        let mut profile = ProfileContent::bare("Pat", "Doe", Gender::Female);
        profile.education.push(EducationEntry::high_school(school, 2014));
        profile.current_city = Some(city);
        profile.photos_shared = 12;
        let id = net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1996, 5, 1),
            registration: Registration {
                registered_birth_date: registered_birth,
                registration_date: Date::ymd(2009, 1, 1),
            },
            profile,
            privacy,
            role: Role::CurrentStudent { school, grad_year: 2014 },
        });
        (net, id)
    }

    #[test]
    fn registered_minor_is_hard_capped_even_at_max_sharing() {
        let (net, id) = network_with(PrivacySettings::maximum_sharing(), Date::ymd(1996, 5, 1));
        let view = FacebookPolicy::new().stranger_view(&net, id);
        assert!(view.is_minimal(), "minor view leaked: {view:?}");
        assert!(!view.message_button);
        assert!(view.education.is_empty());
    }

    #[test]
    fn registered_adult_with_defaults_shows_education_not_birthday() {
        let (net, id) = network_with(
            PrivacySettings::facebook_adult_default(),
            Date::ymd(1992, 5, 1), // registered 19 — a lying minor
        );
        let view = FacebookPolicy::new().stranger_view(&net, id);
        assert!(!view.is_minimal());
        assert_eq!(view.education.len(), 1);
        assert!(view.friend_list_visible);
        assert!(view.birthday.is_none());
        assert!(view.contact.is_none());
        assert_eq!(view.photos_shared, Some(12));
        assert!(view.message_button);
    }

    #[test]
    fn registered_adult_locked_down_is_minimal() {
        let (net, id) = network_with(PrivacySettings::locked_down(), Date::ymd(1992, 5, 1));
        let view = FacebookPolicy::new().stranger_view(&net, id);
        assert!(view.is_minimal());
    }

    #[test]
    fn search_excludes_registered_minors() {
        let policy = FacebookPolicy::new();
        // Truthful minor: listed school is public by settings, but the
        // account is a registered minor -> never searchable.
        let (net, id) = network_with(PrivacySettings::maximum_sharing(), Date::ymd(1996, 5, 1));
        assert!(!policy.searchable_by_school(&net, id, SchoolId(0)));
        // Lying minor (registered adult): searchable.
        let (net, id) =
            network_with(PrivacySettings::facebook_adult_default(), Date::ymd(1992, 5, 1));
        assert!(policy.searchable_by_school(&net, id, SchoolId(0)));
        // Registered adult who opted out of public search: not searchable.
        let mut settings = PrivacySettings::facebook_adult_default();
        settings.public_search = false;
        let (net, id) = network_with(settings, Date::ymd(1992, 5, 1));
        assert!(!policy.searchable_by_school(&net, id, SchoolId(0)));
        // Registered adult with private education and no network: not searchable.
        let mut settings = PrivacySettings::facebook_adult_default();
        settings.education = Audience::Friends;
        let (net, id) = network_with(settings, Date::ymd(1992, 5, 1));
        assert!(!policy.searchable_by_school(&net, id, SchoolId(0)));
    }

    #[test]
    fn search_requires_matching_school() {
        let (mut net, id) =
            network_with(PrivacySettings::facebook_adult_default(), Date::ymd(1992, 5, 1));
        let other = net.add_school(School {
            id: SchoolId(0),
            name: "HS2".into(),
            city: hsp_graph::CityId(0),
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 1500,
        });
        assert!(!FacebookPolicy::new().searchable_by_school(&net, id, other));
    }

    #[test]
    fn network_membership_makes_account_searchable() {
        let mut settings = PrivacySettings::facebook_adult_default();
        settings.education = Audience::Friends; // education hidden
        let (mut net, id) = network_with(settings, Date::ymd(1992, 5, 1));
        net.user_mut(id).profile.networks.push(SchoolId(0));
        assert!(FacebookPolicy::new().searchable_by_school(&net, id, SchoolId(0)));
    }

    #[test]
    fn reverse_lookup_switch() {
        assert!(FacebookPolicy::new().reverse_lookup_enabled());
        assert!(!FacebookPolicy::without_reverse_lookup().reverse_lookup_enabled());
    }
}
