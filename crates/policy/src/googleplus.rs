//! Google+'s privacy policy for strangers, per the paper's Appendix A
//! (Table 6).
//!
//! Google+ differs from Facebook in two ways that matter here:
//!
//! - Friendships are **asymmetric circles**; the stranger-visible
//!   analogues of a friend list are "In Your Circles" and "Have You in
//!   Circles".
//! - Minors are protected by **defaults rather than hard caps**: a
//!   registered minor who maximises sharing exposes nearly everything
//!   (Table 6's worst-case minor column), unlike Facebook's minimal-
//!   information cap. The load-bearing protection is the same as
//!   Facebook's, though: registered minors are not returned in school
//!   search.

use crate::policy::Policy;
use crate::view::PublicView;
use hsp_graph::{Audience, Network, SchoolId, UserId};

/// The Google+ policy engine.
#[derive(Clone, Debug, Default)]
pub struct GooglePlusPolicy;

impl GooglePlusPolicy {
    pub fn new() -> Self {
        GooglePlusPolicy
    }
}

impl Policy for GooglePlusPolicy {
    fn name(&self) -> &'static str {
        "googleplus"
    }

    fn stranger_view(&self, net: &Network, target: UserId) -> PublicView {
        let user = net.user(target);
        let p = &user.profile;
        // Table 6 row 1: name + profile picture always.
        let mut view = PublicView::minimal(
            target,
            p.full_name(),
            None, // gender is a settable field on G+, not an always-on one
            p.has_profile_photo,
            Vec::new(),
        );
        // No hard cap: every field follows the user's audience. (The
        // minor/adult difference on G+ lives in the *defaults* assigned
        // at registration, see `gplus_minor_default`.)
        let s = &user.privacy;
        if s.education.visible_to_stranger() {
            view.education = p.education.clone();
            view.gender = Some(p.gender);
        }
        if s.hometown.visible_to_stranger() {
            view.hometown = p.hometown;
        }
        if s.current_city.visible_to_stranger() {
            view.current_city = p.current_city;
        }
        if s.relationship.visible_to_stranger() {
            view.relationship = p.relationship;
            view.interested_in = p.interested_in;
        }
        if s.birthday.visible_to_stranger() {
            view.birthday = Some(user.registration.registered_birth_date);
        }
        // Circles stand in for the friend list.
        view.friend_list_visible = s.friend_list.visible_to_stranger();
        if s.photos.visible_to_stranger() {
            view.photos_shared = Some(p.photos_shared);
        }
        if s.contact_info.visible_to_stranger() && !p.contact.is_empty() {
            view.contact = Some(p.contact.clone());
        }
        view.message_button = s.message_button == Audience::Public;
        view
    }

    fn searchable_by_school(&self, net: &Network, user: UserId, school: SchoolId) -> bool {
        let u = net.user(user);
        // Same load-bearing rule as Facebook: registered minors are not
        // returned by the school-search portal.
        if u.is_registered_minor(net.today) {
            return false;
        }
        if !u.privacy.public_search {
            return false;
        }
        u.privacy.education.visible_to_stranger()
            && u.profile.education.iter().any(|e| e.school == school)
    }

    fn friend_list_stranger_visible(&self, net: &Network, user: UserId) -> bool {
        self.stranger_view(net, user).friend_list_visible
    }

    fn reverse_lookup_enabled(&self) -> bool {
        true
    }

    fn visible_circles(&self, net: &Network, owner: UserId, incoming: bool) -> Option<Vec<UserId>> {
        // Both Table 6 circle rows share the friend-list audience.
        if !self.friend_list_stranger_visible(net, owner) {
            return None;
        }
        let list = if incoming {
            net.circles().have_in_circles(owner)
        } else {
            net.circles().in_circles_of(owner)
        };
        Some(list.to_vec())
    }
}

/// Google+'s default audiences for a newly registered *minor* account:
/// only name and profile picture are public (Table 6 column 1).
pub fn gplus_minor_default() -> hsp_graph::PrivacySettings {
    hsp_graph::PrivacySettings {
        friend_list: Audience::Friends,
        education: Audience::Friends,
        relationship: Audience::Friends,
        interested_in: Audience::Friends,
        birthday: Audience::Friends,
        hometown: Audience::Friends,
        current_city: Audience::Friends,
        photos: Audience::Friends,
        contact_info: Audience::Friends,
        wall: Audience::Friends,
        public_search: false,
        message_button: Audience::Friends,
    }
}

/// Google+'s default audiences for a newly registered *adult* account
/// (Table 6 column 2): employment/education/hometown/city and circle
/// visibility public; phone, relationship, birthday, photos not.
pub fn gplus_adult_default() -> hsp_graph::PrivacySettings {
    hsp_graph::PrivacySettings {
        friend_list: Audience::Public, // "in your circles" visible
        education: Audience::Public,
        relationship: Audience::Friends,
        interested_in: Audience::Friends,
        birthday: Audience::Friends,
        hometown: Audience::Public,
        current_city: Audience::Public,
        photos: Audience::Friends,
        contact_info: Audience::Friends,
        wall: Audience::Friends,
        public_search: true,
        message_button: Audience::Public,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::{
        Date, EducationEntry, Gender, PrivacySettings, ProfileContent, Registration, Role, School,
        SchoolKind, User,
    };

    fn network_with(privacy: PrivacySettings, registered_birth: Date) -> (Network, UserId) {
        let mut net = Network::new(Date::ymd(2012, 6, 1));
        let city = net.add_city("Plainfield", "OH");
        let school = net.add_school(School {
            id: SchoolId(0),
            name: "HS3".into(),
            city,
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 1500,
        });
        let mut profile = ProfileContent::bare("Sam", "Hill", Gender::Male);
        profile.education.push(EducationEntry::high_school(school, 2014));
        profile.contact.phone = Some("555-0101".into());
        let id = net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1996, 2, 1),
            registration: Registration {
                registered_birth_date: registered_birth,
                registration_date: Date::ymd(2010, 1, 1),
            },
            profile,
            privacy,
            role: Role::CurrentStudent { school, grad_year: 2014 },
        });
        (net, id)
    }

    #[test]
    fn minor_with_defaults_shows_only_name_and_photo() {
        let (net, id) = network_with(gplus_minor_default(), Date::ymd(1996, 2, 1));
        let view = GooglePlusPolicy::new().stranger_view(&net, id);
        assert!(view.is_minimal());
        assert!(view.gender.is_none());
    }

    #[test]
    fn minor_maximising_sharing_leaks_everything_no_hard_cap() {
        // The crucial difference from Facebook: a G+ registered minor
        // *can* expose phone, birthday, photos (Table 6 worst-case).
        let (net, id) = network_with(PrivacySettings::maximum_sharing(), Date::ymd(1996, 2, 1));
        let view = GooglePlusPolicy::new().stranger_view(&net, id);
        assert!(!view.is_minimal());
        assert!(view.contact.is_some(), "G+ worst case exposes phone");
        assert!(view.birthday.is_some());
        assert!(view.friend_list_visible);
    }

    #[test]
    fn facebook_hard_caps_where_gplus_does_not() {
        let (net, id) = network_with(PrivacySettings::maximum_sharing(), Date::ymd(1996, 2, 1));
        let fb = crate::FacebookPolicy::new().stranger_view(&net, id);
        let gp = GooglePlusPolicy::new().stranger_view(&net, id);
        assert!(fb.is_minimal());
        assert!(!gp.is_minimal());
    }

    #[test]
    fn search_still_excludes_registered_minors() {
        let policy = GooglePlusPolicy::new();
        let (net, id) = network_with(PrivacySettings::maximum_sharing(), Date::ymd(1996, 2, 1));
        assert!(!policy.searchable_by_school(&net, id, SchoolId(0)));
        let (net, id) = network_with(gplus_adult_default(), Date::ymd(1992, 2, 1));
        assert!(policy.searchable_by_school(&net, id, SchoolId(0)));
    }

    #[test]
    fn adult_defaults_expose_education_not_phone() {
        let (net, id) = network_with(gplus_adult_default(), Date::ymd(1992, 2, 1));
        let view = GooglePlusPolicy::new().stranger_view(&net, id);
        assert_eq!(view.education.len(), 1);
        assert!(view.contact.is_none());
        assert!(view.birthday.is_none());
        assert!(view.friend_list_visible);
    }
}
