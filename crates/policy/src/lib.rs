//! # hsp-policy — privacy-policy engines
//!
//! Encodes the stranger-facing privacy rules the paper measures:
//! Facebook's registered-minor hard cap and search exclusion (§3.1,
//! Table 1) and Google+'s defaults-based protection (Appendix A,
//! Table 6). The platform consults a [`Policy`] for every page it
//! renders, so the attacker can only ever learn what these rules allow —
//! the same constraint the paper's third party operated under.
//!
//! [`matrix`] regenerates the paper's visibility matrices by *probing*
//! the engines with default/worst-case minor/adult accounts, so Tables 1
//! and 6 are outputs of the implementation, not constants.

pub mod countermeasures;
pub mod facebook;
pub mod googleplus;
pub mod matrix;
pub mod policy;
pub mod view;

pub use countermeasures::{AgeConsistencySearchPolicy, YoungAdultFriendListPolicy};
pub use facebook::FacebookPolicy;
pub use googleplus::{gplus_adult_default, gplus_minor_default, GooglePlusPolicy};
pub use matrix::{facebook_matrix, googleplus_matrix, probe_matrix, InfoRow, VisibilityMatrix};
pub use policy::Policy;
pub use view::PublicView;
