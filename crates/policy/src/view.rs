//! The stranger-visible view of a profile.

use hsp_graph::{
    CityId, ContactInfo, Date, EducationEntry, Gender, InterestedIn, RelationshipStatus, SchoolId,
    UserId,
};
use serde::{Deserialize, Serialize};

/// Everything a stranger can see when visiting a user's public profile
/// page, after the policy engine has applied both the user's settings
/// and any platform-imposed caps (e.g. Facebook's registered-minor cap).
///
/// `None` / `false` / empty means "not shown to strangers".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PublicView {
    pub user: UserId,
    /// Name is always shown.
    pub name: String,
    pub gender: Option<Gender>,
    pub has_profile_photo: bool,
    /// Networks joined (school/work) — visible per Table 1 row 1.
    pub networks: Vec<SchoolId>,
    /// Education entries, empty unless stranger-visible.
    pub education: Vec<EducationEntry>,
    pub hometown: Option<CityId>,
    pub current_city: Option<CityId>,
    pub relationship: Option<RelationshipStatus>,
    pub interested_in: Option<InterestedIn>,
    pub birthday: Option<Date>,
    /// Whether the friend list page is served to strangers.
    pub friend_list_visible: bool,
    /// Number of shared photos a stranger can browse (None = hidden).
    pub photos_shared: Option<u32>,
    /// Number of wall posts a stranger can read (None = hidden).
    pub wall_posts: Option<u32>,
    /// Authors of recent visible wall posts (empty when the wall is
    /// hidden) — the interaction signal of §4.3's cited optimization.
    pub wall_posters: Vec<UserId>,
    pub contact: Option<ContactInfo>,
    /// Whether the "Message" button is offered to strangers.
    pub message_button: bool,
}

impl PublicView {
    /// A view containing nothing but the always-public basics.
    pub fn minimal(
        user: UserId,
        name: String,
        gender: Option<Gender>,
        has_profile_photo: bool,
        networks: Vec<SchoolId>,
    ) -> Self {
        PublicView {
            user,
            name,
            gender,
            has_profile_photo,
            networks,
            education: Vec::new(),
            hometown: None,
            current_city: None,
            relationship: None,
            interested_in: None,
            birthday: None,
            friend_list_visible: false,
            photos_shared: None,
            wall_posts: None,
            wall_posters: Vec::new(),
            contact: None,
            message_button: false,
        }
    }

    /// The paper's "minimal information" test (§3.1): at most name,
    /// profile photo, networks and gender, and no Message button. A
    /// stranger seeing *more* than this can conclude the profile belongs
    /// to a registered adult.
    pub fn is_minimal(&self) -> bool {
        self.education.is_empty()
            && self.hometown.is_none()
            && self.current_city.is_none()
            && self.relationship.is_none()
            && self.interested_in.is_none()
            && self.birthday.is_none()
            && !self.friend_list_visible
            && self.photos_shared.is_none()
            && self.wall_posts.is_none()
            && self.wall_posters.is_empty()
            && self.contact.is_none()
            && !self.message_button
    }

    /// The high-school entry shown, if any.
    pub fn listed_high_school(&self) -> Option<EducationEntry> {
        self.education.iter().copied().find(|e| e.kind == hsp_graph::EducationKind::HighSchool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_view_is_minimal() {
        let v = PublicView::minimal(UserId(1), "A B".into(), Some(Gender::Female), true, vec![]);
        assert!(v.is_minimal());
    }

    #[test]
    fn any_extra_field_breaks_minimality() {
        let base = PublicView::minimal(UserId(1), "A B".into(), Some(Gender::Female), true, vec![]);
        let mut with_edu = base.clone();
        with_edu.education.push(EducationEntry::high_school(SchoolId(0), 2014));
        assert!(!with_edu.is_minimal());

        let mut with_msg = base.clone();
        with_msg.message_button = true;
        assert!(!with_msg.is_minimal());

        let mut with_friends = base.clone();
        with_friends.friend_list_visible = true;
        assert!(!with_friends.is_minimal());

        let mut with_city = base;
        with_city.current_city = Some(CityId(0));
        assert!(!with_city.is_minimal());
    }
}
