//! Regenerates the paper's policy matrices (Table 1 for Facebook,
//! Table 6 for Google+) *by probing the policy engine* with four
//! synthetic accounts — default/worst-case × registered-minor/adult —
//! rather than hardcoding the expected checkmarks.

use crate::policy::Policy;
use crate::view::PublicView;
use hsp_graph::{
    Date, EducationEntry, Gender, Network, PrivacySettings, ProfileContent, Registration, Role,
    School, SchoolId, SchoolKind, User, UserId,
};
use serde::{Deserialize, Serialize};

/// The information categories used as rows of Tables 1 and 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfoRow {
    NameGenderNetworksPhoto,
    HighSchool,
    Relationship,
    InterestedIn,
    Birthday,
    Hometown,
    CurrentCity,
    FriendList,
    Photos,
    ContactInfo,
    PublicSearch,
    MessageButton,
}

impl InfoRow {
    pub const ALL: [InfoRow; 12] = [
        InfoRow::NameGenderNetworksPhoto,
        InfoRow::HighSchool,
        InfoRow::Relationship,
        InfoRow::InterestedIn,
        InfoRow::Birthday,
        InfoRow::Hometown,
        InfoRow::CurrentCity,
        InfoRow::FriendList,
        InfoRow::Photos,
        InfoRow::ContactInfo,
        InfoRow::PublicSearch,
        InfoRow::MessageButton,
    ];

    pub fn label(self) -> &'static str {
        match self {
            InfoRow::NameGenderNetworksPhoto => "Name, Gender, Networks, Profile Photo",
            InfoRow::HighSchool => "High School",
            InfoRow::Relationship => "Relationship",
            InfoRow::InterestedIn => "Interested In",
            InfoRow::Birthday => "Birthday",
            InfoRow::Hometown => "Hometown",
            InfoRow::CurrentCity => "Current City",
            InfoRow::FriendList => "Friend List",
            InfoRow::Photos => "Photos",
            InfoRow::ContactInfo => "Contact Information",
            InfoRow::PublicSearch => "Public Search",
            InfoRow::MessageButton => "Message Button",
        }
    }
}

/// One probed cell set: what each category resolves to for a given
/// (settings, registered-age) probe account.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixColumn {
    pub label: String,
    pub visible: Vec<bool>, // indexed like InfoRow::ALL
}

/// The full matrix: four probe columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VisibilityMatrix {
    pub policy: String,
    pub columns: [MatrixColumn; 4],
}

impl VisibilityMatrix {
    /// Look up one cell.
    pub fn cell(&self, row: InfoRow, column: usize) -> bool {
        let idx = InfoRow::ALL.iter().position(|r| *r == row).expect("known row");
        self.columns[column].visible[idx]
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let label_w = InfoRow::ALL.iter().map(|r| r.label().len()).max().unwrap_or(0);
        out.push_str(&format!("{:<label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {:^14}", c.label));
        }
        out.push('\n');
        for (i, row) in InfoRow::ALL.iter().enumerate() {
            out.push_str(&format!("{:<label_w$}", row.label()));
            for c in &self.columns {
                out.push_str(&format!(" | {:^14}", if c.visible[i] { "x" } else { "" }));
            }
            out.push('\n');
        }
        out
    }
}

/// Build the four probe accounts and evaluate `policy` against them.
///
/// `minor_default` / `adult_default` supply the platform's registration
/// defaults (they differ between Facebook and Google+).
pub fn probe_matrix(
    policy: &dyn Policy,
    minor_default: PrivacySettings,
    adult_default: PrivacySettings,
) -> VisibilityMatrix {
    let mut net = Network::new(Date::ymd(2012, 3, 15));
    let city = net.add_city("Probetown", "NY");
    let school = net.add_school(School {
        id: SchoolId(0),
        name: "Probe High School".into(),
        city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 400,
    });

    let worst = PrivacySettings::maximum_sharing();
    let probes = [
        ("Def. minor", minor_default, Date::ymd(1996, 1, 1)),
        ("Def. adult", adult_default, Date::ymd(1990, 1, 1)),
        ("Worst minor", worst.clone(), Date::ymd(1996, 1, 1)),
        ("Worst adult", worst, Date::ymd(1990, 1, 1)),
    ];

    let columns: Vec<MatrixColumn> = probes
        .into_iter()
        .map(|(label, privacy, birth)| {
            let mut profile = ProfileContent::bare("Probe", "User", Gender::Female);
            profile.education.push(EducationEntry::high_school(school, 2014));
            profile.hometown = Some(city);
            profile.current_city = Some(city);
            profile.relationship = Some(hsp_graph::RelationshipStatus::Single);
            profile.interested_in = Some(hsp_graph::InterestedIn::Men);
            profile.photos_shared = 10;
            profile.wall_posts = 5;
            profile.contact.phone = Some("555-0100".into());
            profile.networks.push(school);
            let id = net.add_user(User {
                id: UserId(0),
                true_birth_date: birth,
                registration: Registration {
                    registered_birth_date: birth,
                    registration_date: Date::ymd(2010, 1, 1),
                },
                profile,
                privacy,
                role: Role::OtherResident,
            });
            let view = policy.stranger_view(&net, id);
            let searchable = policy.searchable_by_school(&net, id, school);
            MatrixColumn { label: label.to_string(), visible: row_flags(&view, searchable) }
        })
        .collect();

    VisibilityMatrix {
        policy: policy.name().to_string(),
        columns: columns.try_into().expect("four probes"),
    }
}

fn row_flags(view: &PublicView, searchable: bool) -> Vec<bool> {
    InfoRow::ALL
        .iter()
        .map(|row| match row {
            InfoRow::NameGenderNetworksPhoto => !view.name.is_empty(),
            InfoRow::HighSchool => view.listed_high_school().is_some(),
            InfoRow::Relationship => view.relationship.is_some(),
            InfoRow::InterestedIn => view.interested_in.is_some(),
            InfoRow::Birthday => view.birthday.is_some(),
            InfoRow::Hometown => view.hometown.is_some(),
            InfoRow::CurrentCity => view.current_city.is_some(),
            InfoRow::FriendList => view.friend_list_visible,
            InfoRow::Photos => view.photos_shared.is_some(),
            InfoRow::ContactInfo => view.contact.is_some(),
            InfoRow::PublicSearch => searchable,
            InfoRow::MessageButton => view.message_button,
        })
        .collect()
}

/// Facebook's Table 1, probed from the engine.
pub fn facebook_matrix() -> VisibilityMatrix {
    probe_matrix(
        &crate::FacebookPolicy::new(),
        PrivacySettings::facebook_minor_default(),
        PrivacySettings::facebook_adult_default(),
    )
}

/// Google+'s Table 6, probed from the engine.
pub fn googleplus_matrix() -> VisibilityMatrix {
    probe_matrix(
        &crate::GooglePlusPolicy::new(),
        crate::googleplus::gplus_minor_default(),
        crate::googleplus::gplus_adult_default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEF_MINOR: usize = 0;
    const DEF_ADULT: usize = 1;
    const WORST_MINOR: usize = 2;
    const WORST_ADULT: usize = 3;

    #[test]
    fn facebook_matrix_matches_table1() {
        let m = facebook_matrix();
        // Row 1: available in all four columns.
        for c in 0..4 {
            assert!(m.cell(InfoRow::NameGenderNetworksPhoto, c));
        }
        // HS / relationship / interested-in: adults only (default + worst).
        for row in [InfoRow::HighSchool, InfoRow::Relationship, InfoRow::InterestedIn] {
            assert!(!m.cell(row, DEF_MINOR), "{row:?} leaked for default minor");
            assert!(m.cell(row, DEF_ADULT));
            assert!(!m.cell(row, WORST_MINOR), "{row:?} leaked for worst minor");
            assert!(m.cell(row, WORST_ADULT));
        }
        // Birthday and contact info: worst-case adults only.
        for row in [InfoRow::Birthday, InfoRow::ContactInfo] {
            assert!(!m.cell(row, DEF_MINOR));
            assert!(!m.cell(row, DEF_ADULT));
            assert!(!m.cell(row, WORST_MINOR));
            assert!(m.cell(row, WORST_ADULT));
        }
        // Hometown / current city / friend list / photos / public search:
        // adults default + worst.
        for row in [
            InfoRow::Hometown,
            InfoRow::CurrentCity,
            InfoRow::FriendList,
            InfoRow::Photos,
            InfoRow::PublicSearch,
        ] {
            assert!(!m.cell(row, DEF_MINOR));
            assert!(m.cell(row, DEF_ADULT));
            assert!(!m.cell(row, WORST_MINOR), "{row:?} leaked for worst minor");
            assert!(m.cell(row, WORST_ADULT));
        }
        // Message button never for minors.
        assert!(!m.cell(InfoRow::MessageButton, DEF_MINOR));
        assert!(!m.cell(InfoRow::MessageButton, WORST_MINOR));
        assert!(m.cell(InfoRow::MessageButton, WORST_ADULT));
    }

    #[test]
    fn gplus_matrix_matches_table6_shape() {
        let m = googleplus_matrix();
        // Row 1 for everyone.
        for c in 0..4 {
            assert!(m.cell(InfoRow::NameGenderNetworksPhoto, c));
        }
        // Default minor: nothing else.
        for row in [
            InfoRow::HighSchool,
            InfoRow::Birthday,
            InfoRow::ContactInfo,
            InfoRow::Photos,
            InfoRow::PublicSearch,
            InfoRow::FriendList,
        ] {
            assert!(!m.cell(row, DEF_MINOR), "{row:?} leaked for default G+ minor");
        }
        // Worst-case minor: G+ has NO hard cap — everything can leak.
        for row in [
            InfoRow::HighSchool,
            InfoRow::Birthday,
            InfoRow::ContactInfo,
            InfoRow::Photos,
            InfoRow::FriendList,
        ] {
            assert!(m.cell(row, WORST_MINOR), "{row:?} capped for worst G+ minor");
        }
        // ...except school search, which still excludes registered minors.
        assert!(!m.cell(InfoRow::PublicSearch, WORST_MINOR));
        assert!(m.cell(InfoRow::PublicSearch, DEF_ADULT));
        // Adult defaults: education/hometown/city yes, phone/birthday no.
        assert!(m.cell(InfoRow::HighSchool, DEF_ADULT));
        assert!(m.cell(InfoRow::Hometown, DEF_ADULT));
        assert!(!m.cell(InfoRow::ContactInfo, DEF_ADULT));
        assert!(!m.cell(InfoRow::Birthday, DEF_ADULT));
    }

    #[test]
    fn render_produces_a_row_per_category() {
        let text = facebook_matrix().render();
        assert_eq!(text.lines().count(), 1 + InfoRow::ALL.len());
        assert!(text.contains("Friend List"));
    }
}
