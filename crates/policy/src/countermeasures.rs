//! Countermeasure policy variants beyond §8's reverse-lookup switch.
//!
//! The paper closes by noting that "designing and evaluating all
//! combinations of possible laws and measures is a major research
//! problem on its own" and evaluates one measure. These wrappers let the
//! experiments sweep a small design space:
//!
//! - [`AgeConsistencySearchPolicy`]: don't return users in school search
//!   whose *own public claims* imply they are under 18 (a registered
//!   adult publicly listing a current high-school class is claiming to
//!   be a teenager — the platform can notice the contradiction).
//! - [`YoungAdultFriendListPolicy`]: extend the minor friend-list
//!   protection to registered users under a configurable age, shielding
//!   the 18–20 "registered age" band where lying minors live.

use crate::policy::Policy;
use crate::view::PublicView;
use hsp_graph::{Network, SchoolId, UserId};
use std::sync::Arc;

/// Search screening on self-contradictory ages.
///
/// A user whose public profile lists the target school with a current
/// or future graduation year is, by their own claim, a current student
/// — and therefore (almost certainly) a minor. This policy removes such
/// users from school-search results, cutting off the attacker's core
/// set at its source while leaving genuine alumni searchable.
pub struct AgeConsistencySearchPolicy {
    base: Arc<dyn Policy>,
}

impl AgeConsistencySearchPolicy {
    pub fn new(base: Arc<dyn Policy>) -> Self {
        AgeConsistencySearchPolicy { base }
    }
}

impl Policy for AgeConsistencySearchPolicy {
    fn name(&self) -> &'static str {
        "age-consistency-search"
    }

    fn stranger_view(&self, net: &Network, target: UserId) -> PublicView {
        self.base.stranger_view(net, target)
    }

    fn searchable_by_school(&self, net: &Network, user: UserId, school: SchoolId) -> bool {
        if !self.base.searchable_by_school(net, user, school) {
            return false;
        }
        let senior = net.senior_class_year();
        let view = self.base.stranger_view(net, user);
        // Publicly claims current attendance at ANY high school =>
        // self-identified minor => screened from search.
        let claims_current = view.education.iter().any(|e| {
            e.kind == hsp_graph::EducationKind::HighSchool
                && e.grad_year.is_some_and(|g| g >= senior)
        });
        !claims_current
    }

    fn friend_list_stranger_visible(&self, net: &Network, user: UserId) -> bool {
        self.base.friend_list_stranger_visible(net, user)
    }

    fn reverse_lookup_enabled(&self) -> bool {
        self.base.reverse_lookup_enabled()
    }
}

/// Friend-list protection for young registered adults.
///
/// Hides the friend list from strangers for any user whose *registered*
/// age is below `min_age` — because most lying minors register as
/// 18–20, a threshold of 21 shields nearly all of them without touching
/// the adult population at large.
pub struct YoungAdultFriendListPolicy {
    base: Arc<dyn Policy>,
    pub min_age: i32,
}

impl YoungAdultFriendListPolicy {
    pub fn new(base: Arc<dyn Policy>, min_age: i32) -> Self {
        YoungAdultFriendListPolicy { base, min_age }
    }

    fn shielded(&self, net: &Network, user: UserId) -> bool {
        net.user(user).registered_age(net.today) < self.min_age
    }
}

impl Policy for YoungAdultFriendListPolicy {
    fn name(&self) -> &'static str {
        "young-adult-friendlist-cap"
    }

    fn stranger_view(&self, net: &Network, target: UserId) -> PublicView {
        let mut view = self.base.stranger_view(net, target);
        if self.shielded(net, target) {
            view.friend_list_visible = false;
        }
        view
    }

    fn searchable_by_school(&self, net: &Network, user: UserId, school: SchoolId) -> bool {
        self.base.searchable_by_school(net, user, school)
    }

    fn friend_list_stranger_visible(&self, net: &Network, user: UserId) -> bool {
        !self.shielded(net, user) && self.base.friend_list_stranger_visible(net, user)
    }

    fn reverse_lookup_enabled(&self) -> bool {
        self.base.reverse_lookup_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FacebookPolicy;
    use hsp_graph::{
        Audience, Date, EducationEntry, Gender, PrivacySettings, ProfileContent, Registration,
        Role, School, SchoolKind, User,
    };

    fn world() -> (Network, SchoolId, UserId, UserId) {
        let mut net = Network::new(Date::ymd(2012, 3, 15));
        let city = net.add_city("X", "NY");
        let school = net.add_school(School {
            id: SchoolId(0),
            name: "HS".into(),
            city,
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 400,
        });
        let mk = |net: &mut Network, grad_year: i32, registered_birth: Date| {
            let mut profile = ProfileContent::bare("A", "B", Gender::Male);
            profile.education.push(EducationEntry::high_school(school, grad_year));
            net.add_user(User {
                id: UserId(0),
                true_birth_date: Date::ymd(1996, 1, 1),
                registration: Registration {
                    registered_birth_date: registered_birth,
                    registration_date: Date::ymd(2009, 1, 1),
                },
                profile,
                privacy: PrivacySettings::facebook_adult_default(),
                role: Role::OtherResident,
            })
        };
        // A lying minor claiming class of 2014 (registered 19).
        let lying = mk(&mut net, 2014, Date::ymd(1993, 1, 1));
        // A genuine alumnus, class of 2008 (registered 22).
        let alumnus = mk(&mut net, 2008, Date::ymd(1990, 1, 1));
        (net, school, lying, alumnus)
    }

    #[test]
    fn age_consistency_screens_current_claimers_only() {
        let (net, school, lying, alumnus) = world();
        let base: Arc<dyn Policy> = Arc::new(FacebookPolicy::new());
        assert!(base.searchable_by_school(&net, lying, school));
        let screened = AgeConsistencySearchPolicy::new(base);
        assert!(!screened.searchable_by_school(&net, lying, school));
        assert!(screened.searchable_by_school(&net, alumnus, school));
        // Profile views are untouched.
        assert!(!screened.stranger_view(&net, lying).is_minimal());
    }

    #[test]
    fn young_adult_cap_hides_friend_lists_under_threshold() {
        let (net, _school, lying, alumnus) = world();
        let base: Arc<dyn Policy> = Arc::new(FacebookPolicy::new());
        assert!(base.friend_list_stranger_visible(&net, lying));
        let capped = YoungAdultFriendListPolicy::new(base, 21);
        // Registered 19: shielded.
        assert!(!capped.friend_list_stranger_visible(&net, lying));
        assert!(!capped.stranger_view(&net, lying).friend_list_visible);
        assert!(capped.visible_friend_list(&net, lying).is_none());
        // Registered 22: untouched.
        assert!(capped.friend_list_stranger_visible(&net, alumnus));
        // Other fields still leak (this cap is narrower than the §8 one).
        assert!(!capped.stranger_view(&net, lying).is_minimal());
    }

    #[test]
    fn young_adult_cap_respects_existing_privacy() {
        let (mut net, _school, _lying, alumnus) = world();
        net.user_mut(alumnus).privacy.friend_list = Audience::Friends;
        let capped = YoungAdultFriendListPolicy::new(Arc::new(FacebookPolicy::new()), 21);
        assert!(!capped.friend_list_stranger_visible(&net, alumnus));
    }
}
