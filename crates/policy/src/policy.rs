//! The policy-engine trait the platform consults for every page render.

use crate::view::PublicView;
use hsp_graph::{Network, SchoolId, UserId};

/// A platform privacy policy: decides what strangers see and who search
/// returns. Implementations: [`crate::FacebookPolicy`],
/// [`crate::GooglePlusPolicy`].
pub trait Policy: Send + Sync {
    /// Short identifier, e.g. `"facebook"`.
    fn name(&self) -> &'static str;

    /// What a stranger sees on `target`'s public profile page.
    fn stranger_view(&self, net: &Network, target: UserId) -> PublicView;

    /// Whether `user` is returned when a stranger searches for people
    /// associated with `school`.
    fn searchable_by_school(&self, net: &Network, user: UserId, school: SchoolId) -> bool;

    /// Whether a stranger may fetch `user`'s friend-list pages.
    fn friend_list_stranger_visible(&self, net: &Network, user: UserId) -> bool;

    /// Whether users with hidden friend lists still appear inside *other*
    /// users' stranger-visible friend lists. Disabling this is the §8
    /// countermeasure.
    fn reverse_lookup_enabled(&self) -> bool;

    /// The stranger-visible circle lists (Google+ Appendix A): Table 6's
    /// "In Your Circles" (`incoming = false`) and "Have You in Circles"
    /// (`incoming = true`) rows. `None` = not visible or the platform
    /// has no circles. Default: platforms without circles return `None`.
    fn visible_circles(&self, net: &Network, owner: UserId, incoming: bool) -> Option<Vec<UserId>> {
        let _ = (net, owner, incoming);
        None
    }

    /// The stranger-visible friend list of `owner`: their friends, minus
    /// (when reverse lookup is disabled) anyone whose own friend list is
    /// hidden from strangers. Returns `None` when the list itself is not
    /// visible.
    fn visible_friend_list(&self, net: &Network, owner: UserId) -> Option<Vec<UserId>> {
        if !self.friend_list_stranger_visible(net, owner) {
            return None;
        }
        let friends = net.friends(owner);
        if self.reverse_lookup_enabled() {
            return Some(friends.to_vec());
        }
        Some(
            friends
                .iter()
                .copied()
                .filter(|&f| self.friend_list_stranger_visible(net, f))
                .collect(),
        )
    }
}
