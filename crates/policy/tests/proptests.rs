//! Property tests for the policy engines.
//!
//! The central invariant of the whole study: no matter how a registered
//! minor configures their settings, Facebook's stranger view stays
//! minimal — and dually, anything beyond minimal implies a registered
//! adult (the attacker's inference rule in §3.1).

use hsp_graph::{
    Audience, Date, EducationEntry, Gender, Network, PrivacySettings, ProfileContent, Registration,
    Role, School, SchoolId, SchoolKind, User, UserId,
};
use hsp_policy::{FacebookPolicy, GooglePlusPolicy, Policy};
use proptest::prelude::*;

fn arb_audience() -> impl Strategy<Value = Audience> {
    prop_oneof![
        Just(Audience::Public),
        Just(Audience::FriendsOfFriends),
        Just(Audience::Friends),
        Just(Audience::OnlyMe),
    ]
}

prop_compose! {
    fn arb_privacy()(
        friend_list in arb_audience(),
        education in arb_audience(),
        relationship in arb_audience(),
        interested_in in arb_audience(),
        birthday in arb_audience(),
        hometown in arb_audience(),
        current_city in arb_audience(),
        photos in arb_audience(),
        contact_info in arb_audience(),
        wall in arb_audience(),
        public_search in any::<bool>(),
        message_button in arb_audience(),
    ) -> PrivacySettings {
        PrivacySettings {
            friend_list, education, relationship, interested_in, birthday,
            hometown, current_city, photos, contact_info, wall,
            public_search, message_button,
        }
    }
}

/// Build a one-user network; `true_birth_year`/`registered_birth_year`
/// control minor status on 2012-03-15.
fn build(privacy: PrivacySettings, registered_birth_year: i32) -> (Network, UserId, SchoolId) {
    let mut net = Network::new(Date::ymd(2012, 3, 15));
    let city = net.add_city("X", "NY");
    let school = net.add_school(School {
        id: SchoolId(0),
        name: "HS".into(),
        city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 400,
    });
    let mut profile = ProfileContent::bare("A", "B", Gender::Male);
    profile.education.push(EducationEntry::high_school(school, 2014));
    profile.hometown = Some(city);
    profile.current_city = Some(city);
    profile.relationship = Some(hsp_graph::RelationshipStatus::Single);
    profile.interested_in = Some(hsp_graph::InterestedIn::Women);
    profile.photos_shared = 7;
    profile.wall_posts = 3;
    profile.contact.email = Some("a@b.c".into());
    let id = net.add_user(User {
        id: UserId(0),
        true_birth_date: Date::ymd(1996, 6, 1),
        registration: Registration {
            registered_birth_date: Date::ymd(registered_birth_year, 6, 1),
            registration_date: Date::ymd(2009, 1, 1),
        },
        profile,
        privacy,
        role: Role::CurrentStudent { school, grad_year: 2014 },
    });
    (net, id, school)
}

proptest! {
    /// Facebook: a registered minor's stranger view is minimal under
    /// EVERY possible settings combination (the Table 1 hard cap).
    #[test]
    fn facebook_minor_view_always_minimal(privacy in arb_privacy()) {
        let (net, id, school) = build(privacy, 1996); // registered 15
        let policy = FacebookPolicy::new();
        let view = policy.stranger_view(&net, id);
        prop_assert!(view.is_minimal());
        prop_assert!(!policy.searchable_by_school(&net, id, school));
        prop_assert!(policy.visible_friend_list(&net, id).is_none());
    }

    /// Facebook: an adult's view shows a field iff the audience is
    /// Public — monotonicity in the settings.
    #[test]
    fn facebook_adult_view_follows_audiences(privacy in arb_privacy()) {
        let (net, id, _) = build(privacy.clone(), 1990);
        let view = FacebookPolicy::new().stranger_view(&net, id);
        prop_assert_eq!(!view.education.is_empty(), privacy.education == Audience::Public);
        prop_assert_eq!(view.birthday.is_some(), privacy.birthday == Audience::Public);
        prop_assert_eq!(view.friend_list_visible, privacy.friend_list == Audience::Public);
        prop_assert_eq!(view.contact.is_some(), privacy.contact_info == Audience::Public);
        prop_assert_eq!(view.message_button, privacy.message_button == Audience::Public);
    }

    /// The attacker's §3.1 inference rule is sound on Facebook: a
    /// non-minimal stranger view implies a registered adult. (It is
    /// deliberately NOT asserted for Google+, which has no hard cap —
    /// a registered minor maximising sharing leaks a non-minimal view,
    /// exactly the Appendix A observation.)
    #[test]
    fn facebook_non_minimal_view_implies_registered_adult(
        privacy in arb_privacy(),
        registered_year in 1985i32..2000,
    ) {
        let (net, id, _) = build(privacy, registered_year);
        let view = FacebookPolicy::new().stranger_view(&net, id);
        if !view.is_minimal() {
            prop_assert!(!net.user(id).is_registered_minor(net.today));
        }
    }

    /// On Google+ the same rule holds only under *default* settings —
    /// the protection is defaults, not caps.
    #[test]
    fn gplus_minor_defaults_keep_view_minimal(registered_year in 1995i32..2002) {
        let (net, id, _) = build(hsp_policy::gplus_minor_default(), registered_year);
        let view = GooglePlusPolicy::new().stranger_view(&net, id);
        prop_assert!(view.is_minimal());
    }

    /// Search never returns registered minors, in either engine.
    #[test]
    fn search_never_returns_registered_minors(
        privacy in arb_privacy(),
        registered_year in 1990i32..2002,
    ) {
        let (net, id, school) = build(privacy, registered_year);
        let today = net.today;
        for policy in [&FacebookPolicy::new() as &dyn Policy, &GooglePlusPolicy::new()] {
            if policy.searchable_by_school(&net, id, school) {
                prop_assert!(!net.user(id).is_registered_minor(today));
            }
        }
    }
}

#[test]
fn visible_friend_list_is_subset_and_countermeasure_shrinks_it() {
    // Owner with a public friend list; friends alternate between public
    // and hidden lists.
    let mut net = Network::new(Date::ymd(2012, 3, 15));
    let city = net.add_city("X", "NY");
    let _school = net.add_school(School {
        id: SchoolId(0),
        name: "HS".into(),
        city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 400,
    });
    let mk = |net: &mut Network, public_list: bool| {
        let mut privacy = PrivacySettings::facebook_adult_default();
        privacy.friend_list = if public_list { Audience::Public } else { Audience::Friends };
        net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1990, 1, 1),
            registration: Registration {
                registered_birth_date: Date::ymd(1990, 1, 1),
                registration_date: Date::ymd(2009, 1, 1),
            },
            profile: ProfileContent::bare("F", "G", Gender::Female),
            privacy,
            role: Role::OtherResident,
        })
    };
    let owner = mk(&mut net, true);
    let visible_friend = mk(&mut net, true);
    let hidden_friend = mk(&mut net, false);
    net.add_friendship(owner, visible_friend);
    net.add_friendship(owner, hidden_friend);

    let with = FacebookPolicy::new();
    let without = FacebookPolicy::without_reverse_lookup();

    let full = with.visible_friend_list(&net, owner).unwrap();
    assert_eq!(full, vec![visible_friend, hidden_friend]);

    let reduced = without.visible_friend_list(&net, owner).unwrap();
    assert_eq!(reduced, vec![visible_friend]);
    assert!(reduced.iter().all(|f| full.contains(f)), "subset violated");
}
