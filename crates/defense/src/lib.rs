//! Platform-side online sybil detection.
//!
//! The paper's §8 countermeasure discussion is qualitative: "the
//! platform could detect crawler-like behavior". This crate makes it
//! operational — and deterministic — so the reproduction can measure a
//! detection-rate vs attack-cost frontier instead of hand-waving.
//!
//! The [`SybilDetector`] sits in the platform's request path (before
//! the fault engine) and maintains one [feature block](SessionState)
//! per authenticated session, keyed exactly like the fault engine's
//! principal streams: by the account index baked into the `sid` cookie.
//! Per-session features follow Fire et al.'s behavioral sybil
//! classifiers, restricted to what an online, request-time detector can
//! actually see:
//!
//! - **inter-request timing**: fraction of gaps that are machine-fast
//!   and fraction that are metronomically regular, measured on the
//!   shared `VirtualClock`;
//! - **page-traversal fan-out**: distinct profiles visited over profile
//!   fetches (humans revisit friends; crawlers never do);
//! - **search-to-profile mix**: the share of traffic that is scraping
//!   surface (search, profiles, friend lists) vs social actions;
//! - **contact accept ratio**: messages rejected by the recipient's
//!   policy over messages sent (strangers mass-messaging get denied).
//!
//! Scores are integer per-mille — no floats anywhere — and every
//! stochastic choice (per-account threshold jitter) comes from a
//! counter-free `splitmix64` of `(detector seed, principal key)`, so a
//! session's treatment is a pure function of its own request order.
//! That is the same interleaving-invariance contract the fault engine
//! honors, and what makes worker count a pure throughput knob even with
//! the detector enabled.
//!
//! Flagged sessions climb an escalation ladder, never skipping a rung:
//!
//! ```text
//! None → Captcha (serve + x-captcha solve cost) → Throttle (429 window) → Suspend
//! ```
//!
//! How far the ladder may climb is the [`DetectorStrength`] knob:
//! `Low` stops at CAPTCHAs, `Medium` adds throttle windows, `High` can
//! suspend. `Off` is a strict no-op: no state, no clock reads, no
//! headers — the baseline attack replays bit-identically.

use hsp_http::{request_cookie, Request};
use hsp_obs::{Counter, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How aggressive the platform's sybil defense is. Tiers differ in how
/// much evidence they demand, how hard they punish, and how far up the
/// escalation ladder they may climb — see [`DetectorProfile::for_strength`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorStrength {
    /// Detector disabled entirely (strict no-op; the default).
    Off,
    /// Conservative: long observation window, CAPTCHAs only.
    Low,
    /// Moderate: adds temporary throttle windows.
    Medium,
    /// Aggressive: short window, may suspend accounts outright.
    High,
}

impl DetectorStrength {
    /// Label used in metrics and benchmark rows.
    pub fn label(self) -> &'static str {
        match self {
            DetectorStrength::Off => "off",
            DetectorStrength::Low => "low",
            DetectorStrength::Medium => "medium",
            DetectorStrength::High => "high",
        }
    }

    /// The three active tiers, in escalation order (for sweeps).
    pub fn active_tiers() -> [DetectorStrength; 3] {
        [DetectorStrength::Low, DetectorStrength::Medium, DetectorStrength::High]
    }
}

/// Platform-side defense configuration (embedded in `PlatformConfig`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Detector strength tier; `Off` disables the subsystem.
    pub strength: DetectorStrength,
    /// Seed of the detector's jitter stream (per-account thresholds).
    pub seed: u64,
}

impl Default for DefenseConfig {
    fn default() -> DefenseConfig {
        DefenseConfig { strength: DetectorStrength::Off, seed: 0xDEF_2013 }
    }
}

/// Rung of the escalation ladder a session currently sits on. Ordered:
/// a session only ever moves up, one rung at a time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    #[default]
    None,
    /// Every request is served but carries an `x-captcha` solve cost.
    Captcha,
    /// A window of requests is refused with 429 + `x-throttled`.
    Throttle,
    /// The account is suspended (429 + `x-account-suspended`).
    Suspend,
}

impl Tier {
    fn next(self) -> Tier {
        match self {
            Tier::None => Tier::Captcha,
            Tier::Captcha => Tier::Throttle,
            Tier::Throttle | Tier::Suspend => Tier::Suspend,
        }
    }

    /// Label used in `defense_escalations_total{tier=…}`.
    pub fn label(self) -> &'static str {
        match self {
            Tier::None => "none",
            Tier::Captcha => "captcha",
            Tier::Throttle => "throttle",
            Tier::Suspend => "suspend",
        }
    }
}

/// Concrete parameters of one strength tier.
#[derive(Clone, Copy, Debug)]
pub struct DetectorProfile {
    /// Observed requests before the model scores a session at all.
    pub min_observations: u64,
    /// Score (per-mille) at or above which a request is a strike.
    pub score_threshold_pm: i64,
    /// Consecutive-ish strikes needed to climb one rung.
    pub strikes_to_escalate: u32,
    /// Observed requests that must pass between escalations. Sized so
    /// a seed sweep (~27 observed requests on HS1) finishes before an
    /// account can climb past CAPTCHA — suspensions land in the
    /// rotating crawl phase where the attacker can fail over.
    pub escalation_cooldown: u64,
    /// CAPTCHA solve cost in virtual milliseconds.
    pub captcha_delay_ms: u64,
    /// Requests refused per throttle window. Count-based, not
    /// time-based: the platform's clock may never advance (parallel
    /// crawls keep per-seat clocks), and a time window would then
    /// never close.
    pub throttle_window: u64,
    /// `Retry-After` advertised on throttle 429s, in seconds.
    pub throttle_retry_after_secs: u64,
    /// Highest rung this strength may climb to.
    pub max_tier: Tier,
}

impl DetectorProfile {
    /// The calibrated ladder per strength; `Off` has no profile.
    pub fn for_strength(strength: DetectorStrength) -> Option<DetectorProfile> {
        match strength {
            DetectorStrength::Off => None,
            DetectorStrength::Low => Some(DetectorProfile {
                min_observations: 48,
                // The naive crawler's realized signature sits around
                // 750‰ (metronomic-but-slow pacing: the regular-gap,
                // fan-out and breadth features saturate while the
                // fast-gap one stays quiet), so Low catches it — but
                // only at CAPTCHA friction. A mildly jittered human
                // browse scores well under 500‰.
                score_threshold_pm: 725,
                strikes_to_escalate: 3,
                escalation_cooldown: 32,
                captcha_delay_ms: 15_000,
                throttle_window: 0,
                throttle_retry_after_secs: 30,
                max_tier: Tier::Captcha,
            }),
            DetectorStrength::Medium => Some(DetectorProfile {
                min_observations: 32,
                score_threshold_pm: 700,
                strikes_to_escalate: 3,
                escalation_cooldown: 24,
                captcha_delay_ms: 30_000,
                throttle_window: 12,
                throttle_retry_after_secs: 60,
                max_tier: Tier::Throttle,
            }),
            DetectorStrength::High => Some(DetectorProfile {
                min_observations: 20,
                score_threshold_pm: 420,
                strikes_to_escalate: 2,
                // Long enough that a flagged account grinds through the
                // CAPTCHA and throttle rungs for ~100 requests before
                // the suspension lands. A short cooldown here would
                // make High *cheaper* for the attacker than Medium:
                // suspension replaces a worn account with a fresh
                // recruit that crawls friction-free until min_obs.
                escalation_cooldown: 64,
                captcha_delay_ms: 60_000,
                throttle_window: 16,
                throttle_retry_after_secs: 90,
                max_tier: Tier::Suspend,
            }),
        }
    }
}

/// What the platform should do with the current request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Serve normally.
    Allow,
    /// Serve, but stamp an `x-captcha` header with this solve cost.
    Challenge { delay_ms: u64 },
    /// Refuse with 429 + `x-throttled` + this `Retry-After`.
    Throttle { retry_after_secs: u64 },
    /// Refuse with 429 + `x-account-suspended` + `x-suspended`, and
    /// suspend the account platform-side.
    Suspend,
}

/// Traffic class of an observed route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RouteClass {
    Search,
    Profile,
    FriendList,
    Message,
}

fn route_class(route: &str) -> Option<RouteClass> {
    match route {
        "/find-friends" | "/graph-search" => Some(RouteClass::Search),
        "/profile/:uid" => Some(RouteClass::Profile),
        "/friends/:uid" | "/circles/:uid" => Some(RouteClass::FriendList),
        "/message/:uid" => Some(RouteClass::Message),
        _ => None,
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a(&[h.to_le_bytes(), v.to_le_bytes()].concat())
}

/// Principal key of an observed request: the account index baked into
/// the `sid` cookie (`sid-{index}-…`), offset by 1 — the same keying
/// the fault engine uses. Requests without a session (signup, login,
/// admin surfaces) are not observed: the detector models *account*
/// behavior, and pre-session traffic has no account yet.
fn session_key(req: &Request) -> Option<u64> {
    session_account_index(req).map(|idx| 1 + idx as u64)
}

/// The account index baked into a request's `sid` cookie, if any —
/// what the platform needs to act on a [`Verdict::Suspend`].
pub fn session_account_index(req: &Request) -> Option<usize> {
    let sid = request_cookie(req, "sid")?;
    sid.strip_prefix("sid-")
        .and_then(|rest| rest.split('-').next())
        .and_then(|i| i.parse::<usize>().ok())
}

/// A gap is "machine-fast" below this (humans dwell on pages).
const FAST_GAP_MS: u64 = 2_000;
/// A gap is "regular" if within this of the previous gap (metronomes).
const REGULAR_GAP_TOLERANCE_MS: u64 = 150;
/// Minimum samples before a timing feature participates in the score.
const MIN_TIMING_SAMPLES: u64 = 8;
/// Minimum profile fetches before fan-out participates.
const MIN_FANOUT_SAMPLES: u64 = 8;
/// Minimum messages before the contact-accept ratio participates.
const MIN_MESSAGE_SAMPLES: u64 = 4;
/// Per-account threshold jitter half-width (per-mille).
const THRESHOLD_JITTER_PM: i64 = 10;

/// Per-session behavioral features + ladder position. All counters are
/// cumulative over the session's lifetime: long-horizon evidence is
/// exactly what separates a crawler from a burst of human enthusiasm.
#[derive(Clone, Debug, Default)]
pub struct SessionState {
    /// Total observed requests.
    pub observed: u64,
    searches: u64,
    profiles: u64,
    friend_lists: u64,
    messages: u64,
    messages_denied: u64,
    /// Distinct profile targets seen (hashes of the request path).
    distinct_profiles: std::collections::HashSet<u64>,
    last_ms: Option<u64>,
    prev_gap_ms: Option<u64>,
    gaps: u64,
    fast_gaps: u64,
    regular_gaps: u64,
    /// Current ladder rung.
    pub tier: Tier,
    strikes: u32,
    last_escalation_at: u64,
    throttle_remaining: u64,
    /// Ever escalated past `None` (the "detected" bit).
    pub flagged: bool,
    captchas_issued: u64,
    throttle_rejections: u64,
    escalations: u64,
}

impl SessionState {
    fn observe_request(&mut self, class: RouteClass, target: &str, now_ms: u64) {
        self.observed += 1;
        match class {
            RouteClass::Search => self.searches += 1,
            RouteClass::Profile => {
                self.profiles += 1;
                let path = target.split('?').next().unwrap_or(target);
                self.distinct_profiles.insert(fnv1a(path.as_bytes()));
            }
            RouteClass::FriendList => self.friend_lists += 1,
            RouteClass::Message => self.messages += 1,
        }
        if let Some(last) = self.last_ms {
            let gap = now_ms.saturating_sub(last);
            self.gaps += 1;
            if gap < FAST_GAP_MS {
                self.fast_gaps += 1;
            }
            if let Some(prev) = self.prev_gap_ms {
                let drift = gap.abs_diff(prev);
                if drift <= REGULAR_GAP_TOLERANCE_MS {
                    self.regular_gaps += 1;
                }
            }
            self.prev_gap_ms = Some(gap);
        }
        self.last_ms = Some(now_ms);
    }

    /// Suspicion score in per-mille: a weighted mean over the features
    /// that have enough samples to be meaningful. Integer arithmetic
    /// only — scores must be bit-identical everywhere.
    pub fn score_pm(&self) -> i64 {
        let mut weighted: i64 = 0;
        let mut weights: i64 = 0;
        // Timing regularity (metronomic gaps) — strongest signal.
        if self.gaps >= MIN_TIMING_SAMPLES {
            let regular_pm = (self.regular_gaps * 1000 / self.gaps) as i64;
            weighted += 35 * regular_pm;
            weights += 35;
            let fast_pm = (self.fast_gaps * 1000 / self.gaps) as i64;
            weighted += 25 * fast_pm;
            weights += 25;
        }
        // Traversal fan-out: crawlers never revisit a profile.
        if self.profiles >= MIN_FANOUT_SAMPLES {
            let fanout_pm = (self.distinct_profiles.len() as u64 * 1000 / self.profiles) as i64;
            weighted += 25 * fanout_pm;
            weights += 25;
        }
        // Scrape share of traffic (search + profiles + friend lists).
        let scrape = self.searches + self.profiles + self.friend_lists;
        if let Some(breadth_pm) = (scrape * 1000).checked_div(self.observed) {
            weighted += 15 * breadth_pm as i64;
            weights += 15;
        }
        // Contact accept ratio: strangers get their messages denied.
        if self.messages >= MIN_MESSAGE_SAMPLES {
            let denied_pm = (self.messages_denied * 1000 / self.messages) as i64;
            weighted += 10 * denied_pm;
            weights += 10;
        }
        if weights == 0 {
            0
        } else {
            weighted / weights
        }
    }

    fn digest_into(&self, mut h: u64) -> u64 {
        h = fnv1a_u64(h, self.observed);
        h = fnv1a_u64(h, self.searches);
        h = fnv1a_u64(h, self.profiles);
        h = fnv1a_u64(h, self.friend_lists);
        h = fnv1a_u64(h, self.messages);
        h = fnv1a_u64(h, self.messages_denied);
        h = fnv1a_u64(h, self.distinct_profiles.len() as u64);
        h = fnv1a_u64(h, self.gaps);
        h = fnv1a_u64(h, self.fast_gaps);
        h = fnv1a_u64(h, self.regular_gaps);
        h = fnv1a_u64(h, self.tier as u64);
        h = fnv1a_u64(h, self.strikes as u64);
        h = fnv1a_u64(h, self.throttle_remaining);
        h = fnv1a_u64(h, self.captchas_issued);
        h = fnv1a_u64(h, self.throttle_rejections);
        h = fnv1a_u64(h, self.escalations);
        fnv1a_u64(h, self.score_pm() as u64)
    }
}

/// Lazily-registered defense metrics (only exist when the detector is
/// actually on, so `Off` leaves the registry untouched).
struct DefenseMetrics {
    observed: Arc<Counter>,
    flagged: Arc<Counter>,
    captchas: Arc<Counter>,
    throttle_rejections: Arc<Counter>,
    suspensions: Arc<Counter>,
    escalations_captcha: Arc<Counter>,
    escalations_throttle: Arc<Counter>,
    escalations_suspend: Arc<Counter>,
}

impl DefenseMetrics {
    fn register(reg: &Registry) -> DefenseMetrics {
        DefenseMetrics {
            observed: reg.counter("defense_observed_total"),
            flagged: reg.counter("defense_sessions_flagged_total"),
            captchas: reg.counter("defense_captcha_issued_total"),
            throttle_rejections: reg.counter("defense_throttle_rejections_total"),
            suspensions: reg.counter("defense_suspensions_total"),
            escalations_captcha: reg
                .counter_with("defense_escalations_total", &[("tier", "captcha")]),
            escalations_throttle: reg
                .counter_with("defense_escalations_total", &[("tier", "throttle")]),
            escalations_suspend: reg
                .counter_with("defense_escalations_total", &[("tier", "suspend")]),
        }
    }

    fn escalation(&self, tier: Tier) {
        match tier {
            Tier::None => {}
            Tier::Captcha => self.escalations_captcha.inc(),
            Tier::Throttle => self.escalations_throttle.inc(),
            Tier::Suspend => self.escalations_suspend.inc(),
        }
    }
}

/// The online detector. One per platform; thread-safe; deterministic:
/// a session's treatment depends only on (detector seed, its own
/// request order, the virtual timestamps it was observed at).
pub struct SybilDetector {
    /// `None` when strength is `Off` — observe() short-circuits.
    profile: Option<DetectorProfile>,
    seed: u64,
    /// BTreeMap so digests and iteration are key-ordered.
    sessions: Mutex<BTreeMap<u64, SessionState>>,
    metrics: Option<DefenseMetrics>,
}

impl SybilDetector {
    pub fn new(config: DefenseConfig, registry: &Registry) -> SybilDetector {
        let profile = DetectorProfile::for_strength(config.strength);
        let metrics = profile.as_ref().map(|_| DefenseMetrics::register(registry));
        SybilDetector { profile, seed: config.seed, sessions: Mutex::new(BTreeMap::new()), metrics }
    }

    /// Whether the detector does anything at all.
    pub fn enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Per-account strike threshold: the tier threshold plus a small
    /// seeded jitter, so the model isn't one global constant.
    fn threshold_pm(&self, key: u64) -> i64 {
        let p = self.profile.as_ref().expect("threshold of a disabled detector");
        let jitter = (splitmix64(self.seed ^ key) % (2 * THRESHOLD_JITTER_PM as u64 + 1)) as i64
            - THRESHOLD_JITTER_PM;
        p.score_threshold_pm + jitter
    }

    /// Observe one request *before* it is handled and decide what to do
    /// with it. Must be called on the platform's request path for every
    /// instrumented route; unobservable traffic (no session) passes.
    pub fn observe(&self, route: &str, req: &Request, now_ms: u64) -> Verdict {
        let Some(profile) = self.profile else { return Verdict::Allow };
        let Some(class) = route_class(route) else { return Verdict::Allow };
        let Some(key) = session_key(req) else { return Verdict::Allow };
        let metrics = self.metrics.as_ref().expect("enabled detector has metrics");
        let mut sessions = self.sessions.lock();
        let state = sessions.entry(key).or_default();
        state.observe_request(class, &req.target, now_ms);
        metrics.observed.inc();

        // Already at the top of the ladder: the account stays dead.
        if state.tier == Tier::Suspend {
            return Verdict::Suspend;
        }

        // Score + strike bookkeeping, once there is enough evidence.
        if state.observed >= profile.min_observations {
            if state.score_pm() >= self.threshold_pm(key) {
                state.strikes += 1;
            } else {
                state.strikes = state.strikes.saturating_sub(1);
            }
            let cooled = state.observed - state.last_escalation_at >= profile.escalation_cooldown;
            if state.strikes >= profile.strikes_to_escalate && cooled {
                state.strikes = 0;
                state.last_escalation_at = state.observed;
                if state.tier < profile.max_tier {
                    // Exactly one rung — never skipping.
                    state.tier = state.tier.next();
                    state.escalations += 1;
                    metrics.escalation(state.tier);
                    if !state.flagged {
                        state.flagged = true;
                        metrics.flagged.inc();
                    }
                } else {
                    state.escalations += 1;
                    metrics.escalation(state.tier);
                }
                match state.tier {
                    Tier::Throttle => state.throttle_remaining = profile.throttle_window,
                    Tier::Suspend => {
                        metrics.suspensions.inc();
                        return Verdict::Suspend;
                    }
                    _ => {}
                }
            }
        }

        // An armed throttle window refuses this request.
        if state.throttle_remaining > 0 {
            state.throttle_remaining -= 1;
            state.throttle_rejections += 1;
            metrics.throttle_rejections.inc();
            return Verdict::Throttle { retry_after_secs: profile.throttle_retry_after_secs };
        }

        // A captcha'd session pays the solve cost on every page.
        if state.tier >= Tier::Captcha {
            state.captchas_issued += 1;
            metrics.captchas.inc();
            return Verdict::Challenge { delay_ms: profile.captcha_delay_ms };
        }

        Verdict::Allow
    }

    /// Record the *outcome* of a message request (post-handler): policy
    /// denials feed the contact-accept-ratio feature.
    pub fn observe_message_outcome(&self, req: &Request, denied: bool) {
        if self.profile.is_none() || !denied {
            return;
        }
        let Some(key) = session_key(req) else { return };
        let mut sessions = self.sessions.lock();
        if let Some(state) = sessions.get_mut(&key) {
            state.messages_denied += 1;
        }
    }

    /// Sessions that ever climbed past `None`.
    pub fn sessions_flagged(&self) -> u64 {
        self.sessions.lock().values().filter(|s| s.flagged).count() as u64
    }

    /// How many tracked sessions currently sit on each rung of the
    /// escalation ladder, indexed `[none, captcha, throttle, suspend]`.
    /// Feeds the `/__status` operator dashboard.
    pub fn ladder_occupancy(&self) -> [u64; 4] {
        let sessions = self.sessions.lock();
        let mut counts = [0u64; 4];
        for state in sessions.values() {
            counts[state.tier as usize] += 1;
        }
        counts
    }

    /// Sessions with at least `min_requests` observed requests — the
    /// frontier denominator (sessions large enough that every strength
    /// tier's model has had a chance to score them).
    pub fn sessions_observed(&self, min_requests: u64) -> u64 {
        self.sessions.lock().values().filter(|s| s.observed >= min_requests).count() as u64
    }

    /// `(eligible, flagged-among-eligible)` for the detection-rate
    /// numerator/denominator at a fixed session-size floor.
    pub fn frontier_counts(&self, min_requests: u64) -> (u64, u64) {
        let sessions = self.sessions.lock();
        let eligible = sessions.values().filter(|s| s.observed >= min_requests).count() as u64;
        let flagged =
            sessions.values().filter(|s| s.observed >= min_requests && s.flagged).count() as u64;
        (eligible, flagged)
    }

    /// Inspect one session's state (tests / experiments).
    pub fn session(&self, key: u64) -> Option<SessionState> {
        self.sessions.lock().get(&key).cloned()
    }

    /// Order-independent digest of every session's full feature block,
    /// ladder position and score — the value the parallel-equivalence
    /// proptest compares across worker counts. Keys iterate sorted
    /// (BTreeMap), so the digest is a pure function of per-session
    /// state, not of map insertion order.
    pub fn state_digest(&self) -> u64 {
        let sessions = self.sessions.lock();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (key, state) in sessions.iter() {
            h = fnv1a_u64(h, *key);
            h = state.digest_into(h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::Request;

    fn detector(strength: DetectorStrength) -> SybilDetector {
        SybilDetector::new(DefenseConfig { strength, seed: 0xDEF_2013 }, &Registry::new())
    }

    fn profile_req(sid_idx: u64, uid: u64) -> Request {
        Request::get(format!("/profile/u{uid}")).header("Cookie", format!("sid=sid-{sid_idx}-tok"))
    }

    /// Drive `n` metronomic, never-revisiting profile fetches — the
    /// naive crawler signature — and collect the verdicts.
    fn drive_naive(det: &SybilDetector, sid: u64, n: u64, start_uid: u64) -> Vec<Verdict> {
        (0..n)
            .map(|i| {
                let req = profile_req(sid, start_uid + i);
                det.observe("/profile/:uid", &req, (start_uid + i) * 1_500)
            })
            .collect()
    }

    #[test]
    fn off_is_a_strict_noop() {
        let reg = Registry::new();
        let det = SybilDetector::new(DefenseConfig::default(), &reg);
        assert!(!det.enabled());
        for i in 0..500 {
            let v = det.observe("/profile/:uid", &profile_req(0, i), i * 10);
            assert_eq!(v, Verdict::Allow);
        }
        assert_eq!(det.sessions_observed(0), 0, "Off must keep no state");
        let text = reg.render_prometheus();
        assert!(!text.contains("defense_"), "Off must register no metrics: {text}");
    }

    #[test]
    fn naive_signature_scores_at_ceiling() {
        let det = detector(DetectorStrength::High);
        drive_naive(&det, 0, 19, 0);
        let state = det.session(1).unwrap();
        assert!(
            state.score_pm() >= 950,
            "metronomic scraper must max the score, got {}",
            state.score_pm()
        );
    }

    #[test]
    fn ladder_never_skips_a_rung() {
        let det = detector(DetectorStrength::High);
        let mut seen = vec![Tier::None];
        for i in 0..400u64 {
            det.observe("/profile/:uid", &profile_req(0, i), i * 1_500);
            let tier = det.session(1).unwrap().tier;
            if *seen.last().unwrap() != tier {
                seen.push(tier);
            }
        }
        assert_eq!(
            seen,
            vec![Tier::None, Tier::Captcha, Tier::Throttle, Tier::Suspend],
            "every rung must be climbed in order, one at a time"
        );
    }

    #[test]
    fn strength_caps_the_ladder() {
        for (strength, cap) in [
            (DetectorStrength::Low, Tier::Captcha),
            (DetectorStrength::Medium, Tier::Throttle),
            (DetectorStrength::High, Tier::Suspend),
        ] {
            let det = detector(strength);
            drive_naive(&det, 0, 600, 0);
            let state = det.session(1).unwrap();
            assert_eq!(state.tier, cap, "{strength:?} must cap at {cap:?}");
            assert!(state.flagged);
        }
    }

    #[test]
    fn throttle_window_is_count_based_and_closes() {
        let det = detector(DetectorStrength::Medium);
        let verdicts = drive_naive(&det, 0, 300, 0);
        let throttles = verdicts.iter().filter(|v| matches!(v, Verdict::Throttle { .. })).count();
        assert!(throttles > 0, "Medium must throttle a metronomic scraper");
        // The window closes: after the first throttle the session is
        // served again (with captcha cost) before any later window —
        // a patient attacker is taxed, not dead.
        let first_throttle =
            verdicts.iter().position(|v| matches!(v, Verdict::Throttle { .. })).unwrap();
        assert!(
            verdicts[first_throttle..].iter().any(|v| matches!(v, Verdict::Challenge { .. })),
            "after a throttle window the session must be served again"
        );
        // The first window refuses exactly its configured width.
        let p = DetectorProfile::for_strength(DetectorStrength::Medium).unwrap();
        let first_run = verdicts[first_throttle..]
            .iter()
            .take_while(|v| matches!(v, Verdict::Throttle { .. }))
            .count();
        assert_eq!(first_run as u64, p.throttle_window, "a window refuses exactly its width");
    }

    #[test]
    fn seed_sweep_sized_cooldown_protects_enrollment() {
        // ~27 observed requests is an HS1 seed sweep. Even at High the
        // account must not be *suspended* inside it (captcha is fine):
        // suspension during the pinned sweep phase cannot fail over.
        let det = detector(DetectorStrength::High);
        let verdicts: Vec<_> = (0..27)
            .map(|i| {
                det.observe(
                    "/find-friends",
                    &Request::get(format!("/find-friends?page={i}"))
                        .header("Cookie", "sid=sid-0-tok"),
                    i * 1_500,
                )
            })
            .collect();
        assert!(
            verdicts.iter().all(|v| !matches!(v, Verdict::Suspend)),
            "a seed sweep must survive at every strength"
        );
    }

    #[test]
    fn replay_from_a_seed_is_deterministic() {
        let run = |seed: u64| {
            let det = SybilDetector::new(
                DefenseConfig { strength: DetectorStrength::High, seed },
                &Registry::new(),
            );
            let verdicts = drive_naive(&det, 0, 200, 0);
            (verdicts, det.state_digest())
        };
        assert_eq!(run(7), run(7), "same seed must replay bit-identically");
        // Different seeds may coincide on the verdict sequence (jitter
        // is ±10 pm and the naive score is saturated), but the digest
        // must be reproducible per seed either way.
        assert_eq!(run(8).1, run(8).1);
    }

    #[test]
    fn interleaving_never_changes_per_session_state() {
        // Same argument as the fault engine's stream-independence test:
        // two accounts' requests, round-robin vs blocked, must leave
        // bit-identical per-session state.
        let drive = |det: &SybilDetector, order: &[(u64, u64)]| {
            let mut per_account = std::collections::HashMap::new();
            for &(sid, _) in order {
                per_account.entry(sid).or_insert(0u64);
            }
            for &(sid, i) in order {
                let t = per_account.get_mut(&sid).unwrap();
                det.observe("/profile/:uid", &profile_req(sid, i), *t * 1_500);
                *t += 1;
            }
        };
        let round_robin: Vec<(u64, u64)> =
            (0..200u64).flat_map(|i| [(0, i), (1, i + 10_000)]).collect();
        let blocked: Vec<(u64, u64)> =
            (0..200u64).map(|i| (0, i)).chain((0..200u64).map(|i| (1, i + 10_000))).collect();
        let a = detector(DetectorStrength::High);
        drive(&a, &round_robin);
        let b = detector(DetectorStrength::High);
        drive(&b, &blocked);
        assert_eq!(a.state_digest(), b.state_digest(), "interleaving leaked into detector state");
    }

    #[test]
    fn sessions_without_sid_are_not_observed() {
        let det = detector(DetectorStrength::High);
        for i in 0..100u64 {
            let v = det.observe("/profile/:uid", &Request::get(format!("/profile/u{i}")), i * 10);
            assert_eq!(v, Verdict::Allow);
        }
        assert_eq!(det.sessions_observed(0), 0);
    }

    #[test]
    fn human_pace_and_revisits_stay_clean() {
        // A "human" who revisits the same few friends with irregular,
        // slow gaps must never be flagged, even at High.
        let det = detector(DetectorStrength::High);
        let mut t = 0u64;
        for i in 0..300u64 {
            // Irregular slow gaps (5s..35s) and a pool of 12 friends.
            t += 5_000 + splitmix64(i) % 30_000;
            let v = det.observe("/profile/:uid", &profile_req(0, i % 12), t);
            assert_eq!(v, Verdict::Allow, "human-ish browsing got punished at request {i}");
        }
        assert!(!det.session(1).unwrap().flagged);
    }

    #[test]
    fn message_denials_raise_the_score() {
        let det = detector(DetectorStrength::High);
        let req = |i: u64| {
            Request::post_form(format!("/message/u{i}"), &[("text", "hi")])
                .header("Cookie", "sid=sid-0-tok")
        };
        let mut t = 0u64;
        for i in 0..30u64 {
            t += 5_000 + splitmix64(i) % 30_000;
            det.observe("/message/:uid", &req(i), t);
            det.observe_message_outcome(&req(i), true);
        }
        let with_denials = det.session(1).unwrap().score_pm();
        let det2 = detector(DetectorStrength::High);
        let mut t = 0u64;
        for i in 0..30u64 {
            t += 5_000 + splitmix64(i) % 30_000;
            det2.observe("/message/:uid", &req(i), t);
            det2.observe_message_outcome(&req(i), false);
        }
        let without = det2.session(1).unwrap().score_pm();
        assert!(with_denials > without, "{with_denials} vs {without}");
    }
}
