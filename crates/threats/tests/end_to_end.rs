//! The full §2 threat chain against a generated world: attack →
//! constructed profiles → voter-roll linking → phishing channel →
//! exposure distribution.

use hsp_core::{construct_profile, recover_friend_lists, run_basic, AttackConfig};
use hsp_crawler::{Crawler, OsnAccess};
use hsp_http::DirectExchange;
use hsp_platform::{Platform, PlatformConfig};
use hsp_policy::FacebookPolicy;
use hsp_synth::{generate, Scenario, ScenarioConfig};
use hsp_threats::{
    exposure_of, link_students, run_campaign, ExposureDistribution, LinkConfidence, VoterRoll,
};
use std::sync::Arc;

fn attack(scenario: &Scenario) -> (Crawler<DirectExchange>, AttackConfig) {
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler = platform.into_handler();
    let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
    let crawler = Crawler::new(exchanges, "threat").unwrap();
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );
    (crawler, config)
}

#[test]
fn threat_chain_resolves_addresses_and_measures_phishing() {
    let scenario = generate(&ScenarioConfig::tiny());
    let (mut crawler, config) = attack(&scenario);
    let discovery = run_basic(&mut crawler, &config).unwrap();
    let t = config.school_size_estimate as usize;
    let guessed = discovery.guessed_students(t);
    let rec = recover_friend_lists(&mut crawler, &guessed).unwrap();

    // Constructed profiles for guessed *actual* students (evaluation
    // slice; the attacker would use all guessed users).
    let mut profiles = Vec::new();
    let mut link_inputs = Vec::new();
    for &u in &guessed {
        if !scenario.is_student(u) {
            continue;
        }
        let Some(year) = discovery.inferred_year(u) else { continue };
        let scraped = crawler.profile(u).unwrap();
        let friends = rec.friends_of(u).to_vec();
        let last_name = scenario.network.user(u).profile.last_name.to_string();
        profiles.push(construct_profile(
            &scraped,
            u,
            scenario.school,
            scenario.home_city,
            year,
            friends.clone(),
        ));
        link_inputs.push((u, last_name, scenario.home_city, friends));
    }
    assert!(profiles.len() > 30, "too few constructed profiles");

    // --- voter-record linking -----------------------------------------
    let roll = VoterRoll::build(&scenario.network, scenario.config.seed);
    assert!(roll.len() > 100, "roll too small: {}", roll.len());
    let (links, stats) = link_students(&scenario.network, &roll, link_inputs);
    assert_eq!(stats.students, profiles.len());
    // A sizable fraction resolves, and what resolves is (almost) always
    // the right address — unique-household links can only be wrong if a
    // same-surname family lives elsewhere in town.
    assert!(
        stats.pct_resolved() > 30.0,
        "only {:.0}% of students resolved to an address",
        stats.pct_resolved()
    );
    assert!(stats.precision() > 90.0, "address precision {:.0}%", stats.precision());
    // Friend-list confirmation happens for students with OSN parents in
    // their recovered lists.
    assert!(stats.friend_confirmed > 0, "no friend-confirmed links");
    for link in &links {
        if link.confidence == LinkConfidence::FriendListConfirmed {
            let actual = scenario.network.households().of(link.student).unwrap();
            assert_eq!(
                link.address.as_deref(),
                Some(actual.address.as_str()),
                "friend-confirmed link must be exact"
            );
        }
    }

    // --- spear-phishing channel ------------------------------------------
    let school_name = scenario.network.school(scenario.school).name.to_string();
    let net = scenario.network.clone();
    let stats = run_campaign(&mut crawler, &profiles, &school_name, |f| {
        Some(net.user(f).profile.full_name())
    })
    .unwrap();
    assert_eq!(stats.targets, profiles.len());
    // Minors registered as adults with public message buttons are
    // reachable; registered minors never are.
    assert!(stats.delivered > 0, "nobody reachable");
    assert!(stats.delivered < stats.targets, "registered minors must be unreachable");
    assert!(stats.personalized_with_friend > stats.targets / 2);
    // Every delivery must have gone to a registered adult.
    // (Re-check via ground truth: registered minors' message buttons are
    // hard-capped off, so the platform cannot have accepted them.)
    for p in &profiles {
        if scenario.network.user(p.user).is_registered_minor(scenario.network.today) {
            assert!(!p.message_reachable, "minor {} had message button", p.user);
        }
    }

    // --- exposure distribution ------------------------------------------
    let mut dist = ExposureDistribution::default();
    for (profile, link) in profiles.iter().zip(&links) {
        dist.add(&exposure_of(profile, Some(link)));
    }
    assert_eq!(dist.total(), profiles.len());
    // Everyone leaks at least school+grade; some leak everything.
    assert_eq!(dist.at_least(1), profiles.len());
    assert!(dist.at_least(4) > 0, "no high-exposure students found");
}
