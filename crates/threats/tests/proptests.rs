//! Property tests for the record linker and exposure aggregation.

use hsp_graph::{CityId, UserId};
use hsp_threats::{link_address, LinkConfidence, VoterRecord, VoterRoll};
use proptest::prelude::*;

fn roll_from(records: Vec<VoterRecord>) -> VoterRoll {
    VoterRoll::from_records(records)
}

prop_compose! {
    fn arb_record()(
        last in prop_oneof![Just("Keller"), Just("Nash"), Just("Ashby")],
        first in "[A-Z][a-z]{2,6}",
        addr_n in 1u32..20,
        city in 0u32..2,
        osn in prop::option::of(0u64..30),
    ) -> VoterRecord {
        VoterRecord {
            first_name: first,
            last_name: last.to_string(),
            address: format!("{addr_n} Oak St"),
            city: CityId(city),
            osn_user: osn.map(UserId),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The linker never fabricates an address: whatever it returns is the
    /// address of some candidate record with the right (surname, city);
    /// friend confirmation always wins over ambiguity; and a resolved
    /// unique-household link implies all candidates share that address.
    #[test]
    fn linker_soundness(
        records in prop::collection::vec(arb_record(), 0..12),
        friends in prop::collection::btree_set(0u64..30, 0..6),
        city in 0u32..2,
    ) {
        let roll = roll_from(records.clone());
        let friends: Vec<UserId> = friends.into_iter().map(UserId).collect();
        let link = link_address(&roll, UserId(99), "Keller", CityId(city), &friends);
        let candidates: Vec<&VoterRecord> = records
            .iter()
            .filter(|r| r.last_name == "Keller" && r.city == CityId(city))
            .collect();
        prop_assert_eq!(link.candidates, candidates.len());
        match link.confidence {
            LinkConfidence::NoCandidates => {
                prop_assert!(candidates.is_empty());
                prop_assert!(link.address.is_none());
            }
            LinkConfidence::FriendListConfirmed => {
                let addr = link.address.as_deref().expect("address");
                let confirmed_exists = candidates.iter().any(|r| {
                    r.address == addr
                        && r.osn_user.is_some_and(|u| friends.contains(&u))
                });
                prop_assert!(confirmed_exists);
            }
            LinkConfidence::UniqueHousehold => {
                let addr = link.address.as_deref().expect("address");
                let all_same = candidates.iter().all(|r| r.address == addr);
                prop_assert!(all_same);
                // And no friend match existed (else it would have won).
                let friend_match = candidates.iter().any(|r| {
                    r.osn_user.is_some_and(|u| friends.contains(&u))
                });
                prop_assert!(!friend_match);
            }
            LinkConfidence::Ambiguous => {
                prop_assert!(link.address.is_none());
                let mut addrs: Vec<&str> =
                    candidates.iter().map(|r| r.address.as_str()).collect();
                addrs.sort_unstable();
                addrs.dedup();
                prop_assert!(addrs.len() >= 2, "should have resolved");
            }
        }
    }
}
