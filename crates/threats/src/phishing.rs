//! Spear-phishing measurement (paper §2, third threat).
//!
//! "The profiles could also be used to fuel a large-scale and highly
//! personalized spear-phishing attack against minors. Messages could
//! automatically be generated which mention the target students' high
//! schools, graduation years, and friends."
//!
//! We measure the *channel*, not the harm: for each constructed profile
//! we compose the personalized lure the paper describes and attempt
//! delivery through the platform's Message button, counting who is
//! directly reachable. No deception technique beyond the paper's own
//! description is implemented.

use hsp_core::ConstructedProfile;
use hsp_crawler::{CrawlError, OsnAccess};
use serde::{Deserialize, Serialize};

/// Compose the personalized message body for one target (the paper's
/// example: mention school, graduation year, and a friend's name).
pub fn compose_lure(
    profile: &ConstructedProfile,
    school_name: &str,
    friend_name: Option<&str>,
) -> String {
    let mut body = format!(
        "Hey {}! We're putting together the {} class of {} photo page",
        profile.name.split_whitespace().next().unwrap_or("there"),
        school_name,
        profile.grad_year,
    );
    if let Some(friend) = friend_name {
        body.push_str(&format!(" — {friend} said you'd want in"));
    }
    body.push_str(". Check it out here!");
    body
}

/// Outcome of a phishing-campaign simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    pub targets: usize,
    /// Message accepted by the platform (target is a minor registered as
    /// an adult with a public Message button).
    pub delivered: usize,
    /// Lures that could name-drop a friend (recovered friend list
    /// non-empty).
    pub personalized_with_friend: usize,
}

impl CampaignStats {
    pub fn pct_delivered(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            100.0 * self.delivered as f64 / self.targets as f64
        }
    }
}

/// Run the campaign: compose one lure per constructed profile and
/// attempt delivery. `friend_name_of` resolves a friend id to the
/// display name the attacker scraped.
pub fn run_campaign(
    access: &mut dyn OsnAccess,
    profiles: &[ConstructedProfile],
    school_name: &str,
    mut friend_name_of: impl FnMut(hsp_graph::UserId) -> Option<String>,
) -> Result<CampaignStats, CrawlError> {
    let mut stats = CampaignStats { targets: profiles.len(), ..Default::default() };
    for profile in profiles {
        let friend_name = profile.known_friends.first().and_then(|&f| friend_name_of(f));
        if friend_name.is_some() {
            stats.personalized_with_friend += 1;
        }
        let body = compose_lure(profile, school_name, friend_name.as_deref());
        if access.send_message(profile.user, &body)? {
            stats.delivered += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::{Effort, ScrapedProfile};
    use hsp_graph::{CityId, SchoolId, UserId};
    use std::collections::HashSet;

    fn profile(user: u64, friends: Vec<u64>) -> ConstructedProfile {
        ConstructedProfile {
            user: UserId(user),
            name: "Ava Keller".into(),
            gender: None,
            high_school: SchoolId(0),
            grad_year: 2014,
            est_birth_year: 1996,
            current_city: CityId(0),
            known_friends: friends.into_iter().map(UserId).collect(),
            photos_shared: None,
            relationship_visible: false,
            message_reachable: true,
        }
    }

    struct Stub {
        accepts: HashSet<UserId>,
        sent: Vec<(UserId, String)>,
    }

    impl OsnAccess for Stub {
        fn collect_seeds(&mut self, _: SchoolId) -> Result<Vec<UserId>, CrawlError> {
            Ok(vec![])
        }
        fn profile(&mut self, _: UserId) -> Result<ScrapedProfile, CrawlError> {
            Ok(ScrapedProfile::default())
        }
        fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
            Ok(None)
        }
        fn effort(&self) -> Effort {
            Effort::default()
        }
        fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
            self.sent.push((uid, body.to_string()));
            Ok(self.accepts.contains(&uid))
        }
    }

    #[test]
    fn lure_mentions_school_year_and_friend() {
        let p = profile(1, vec![9]);
        let body = compose_lure(&p, "Lincoln High", Some("Bo Nash"));
        assert!(body.contains("Ava"));
        assert!(body.contains("Lincoln High"));
        assert!(body.contains("2014"));
        assert!(body.contains("Bo Nash"));
        let body = compose_lure(&p, "Lincoln High", None);
        assert!(!body.contains("said you'd want in"));
    }

    #[test]
    fn campaign_counts_delivery_and_personalization() {
        let profiles = vec![profile(1, vec![9]), profile(2, vec![]), profile(3, vec![9])];
        let mut stub =
            Stub { accepts: [UserId(1), UserId(3)].into_iter().collect(), sent: Vec::new() };
        let stats = run_campaign(&mut stub, &profiles, "Lincoln High", |f| {
            (f == UserId(9)).then(|| "Bo Nash".to_string())
        })
        .unwrap();
        assert_eq!(stats.targets, 3);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.personalized_with_friend, 2);
        assert!((stats.pct_delivered() - 66.7).abs() < 0.1);
        assert_eq!(stub.sent.len(), 3);
        assert!(stub.sent[0].1.contains("Bo Nash"));
        assert!(!stub.sent[1].1.contains("Bo Nash"));
    }
}
