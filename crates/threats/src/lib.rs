//! # hsp-threats — quantifying the paper's §2 consequential threats
//!
//! The paper motivates the attack by three downstream harms; this crate
//! implements the measurable mechanics of each, strictly against the
//! simulator:
//!
//! - [`voter`]: **data-broker record linking** — building a synthetic
//!   voter roll from the generated households and resolving discovered
//!   students to street addresses by (surname, city), with the paper's
//!   friend-list confirmation step;
//! - [`phishing`]: **spear-phishing channel measurement** — composing
//!   the personalized lures the paper describes (school, grad year,
//!   friend name) and counting deliverability through the Message
//!   button;
//! - [`risk`]: **exposure aggregation** — a per-student 0–5 exposure
//!   index (school+grade, address, photos, messageability, known
//!   friends), reported only as distributions.

pub mod namegen;
pub mod phishing;
pub mod risk;
pub mod voter;

pub use phishing::{compose_lure, run_campaign, CampaignStats};
pub use risk::{exposure_of, Exposure, ExposureDistribution};
pub use voter::{
    link_address, link_students, AddressLink, LinkConfidence, LinkStats, VoterRecord, VoterRoll,
};
