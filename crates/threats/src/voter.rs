//! Voter-record linking (paper §2, first threat).
//!
//! "By obtaining voter registration records (which most states make
//! available for a small fee), the data broker can use the last name and
//! city in the high-school profiles to link the students to parents in
//! the voter registration records, thereby determining the street
//! address of many of the students. For those students with friend lists
//! ... if a parent appears in the friend list, then the street-address
//! association can be done with greater certainty."
//!
//! The [`VoterRoll`] is a *public record*, so unlike OSN ground truth it
//! is legitimately available to the attacker: it is synthesised from the
//! generator's household registry (every student's guardians are
//! registered voters at the family address, whether or not they have an
//! OSN account), plus all adult community households.

use hsp_graph::{CityId, Network, Role, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One voter-roll entry: a registered adult at an address.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoterRecord {
    pub first_name: String,
    pub last_name: String,
    pub address: String,
    pub city: CityId,
    /// The OSN account of this voter, if they have one (used for the
    /// friend-list confirmation step — matching is done *by name*, the
    /// id is ground truth for evaluation only).
    pub osn_user: Option<UserId>,
}

/// A purchasable city voter roll.
#[derive(Clone, Debug, Default)]
pub struct VoterRoll {
    records: Vec<VoterRecord>,
    /// (last_name, city) -> record indices.
    by_name_city: HashMap<(String, CityId), Vec<usize>>,
}

impl VoterRoll {
    /// Build the roll from the generated world.
    ///
    /// - OSN parents: listed at their household address.
    /// - Off-platform guardians: every student household additionally
    ///   has 1–2 adult voters sharing the student's surname (parents
    ///   exist whether or not they use the OSN).
    /// - Community adults with households: listed at theirs.
    pub fn build(net: &Network, seed: u64) -> VoterRoll {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x707e5);
        let mut roll = VoterRoll::default();
        for user in net.users() {
            let Some(household) = net.households().of(user.id) else {
                continue;
            };
            match &user.role {
                Role::Parent { .. } | Role::OtherResident | Role::NonResident => {
                    roll.push(VoterRecord {
                        first_name: user.profile.first_name.to_string(),
                        last_name: user.profile.last_name.to_string(),
                        address: household.address.clone(),
                        city: household.city,
                        osn_user: Some(user.id),
                    });
                }
                Role::CurrentStudent { .. } => {
                    // Off-platform guardians at the family address. (OSN
                    // parents were generated as separate users and are
                    // handled above.)
                    let n_guardians = 1 + usize::from(rng.gen_bool(0.6));
                    for _ in 0..n_guardians {
                        let first = crate::namegen::guardian_first_name(&mut rng);
                        roll.push(VoterRecord {
                            first_name: first,
                            last_name: user.profile.last_name.to_string(),
                            address: household.address.clone(),
                            city: household.city,
                            osn_user: None,
                        });
                    }
                }
                _ => {}
            }
        }
        roll
    }

    /// Build a roll directly from records (tests, imported datasets).
    pub fn from_records(records: impl IntoIterator<Item = VoterRecord>) -> VoterRoll {
        let mut roll = VoterRoll::default();
        for r in records {
            roll.push(r);
        }
        roll
    }

    fn push(&mut self, record: VoterRecord) {
        let key = (record.last_name.clone(), record.city);
        self.by_name_city.entry(key).or_default().push(self.records.len());
        self.records.push(record);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records matching a surname in a city — the broker's first
    /// lookup step.
    pub fn lookup(&self, last_name: &str, city: CityId) -> Vec<&VoterRecord> {
        self.by_name_city
            .get(&(last_name.to_string(), city))
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }
}

/// How an address association was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkConfidence {
    /// A same-surname voter appears in the student's (recovered) friend
    /// list — the paper's "greater certainty" case.
    FriendListConfirmed,
    /// Exactly one candidate household for (surname, city).
    UniqueHousehold,
    /// Several candidates; the broker picks none.
    Ambiguous,
    /// No same-surname voters in the city.
    NoCandidates,
}

/// The linking outcome for one student profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AddressLink {
    pub student: UserId,
    pub confidence: LinkConfidence,
    /// The resolved address, when confidence permits one.
    pub address: Option<String>,
    /// Candidate count before resolution (diagnostics).
    pub candidates: usize,
}

/// Link one discovered student to an address.
///
/// `last_name`/`city` come from the constructed profile (attacker
/// knowledge); `known_friends` is the recovered friend list; the roll's
/// per-record `osn_user` lets us match friends *by the platform's
/// rendered names*, which is how a real broker would do it — here we
/// shortcut via ids, which is equivalent because platform names are
/// rendered verbatim.
pub fn link_address(
    roll: &VoterRoll,
    student: UserId,
    last_name: &str,
    city: CityId,
    known_friends: &[UserId],
) -> AddressLink {
    let candidates = roll.lookup(last_name, city);
    if candidates.is_empty() {
        return AddressLink {
            student,
            confidence: LinkConfidence::NoCandidates,
            address: None,
            candidates: 0,
        };
    }
    // Friend-list confirmation: a candidate voter who is in the
    // student's recovered friends.
    if let Some(confirmed) = candidates
        .iter()
        .find(|r| r.osn_user.map(|u| known_friends.binary_search(&u).is_ok()).unwrap_or(false))
    {
        return AddressLink {
            student,
            confidence: LinkConfidence::FriendListConfirmed,
            address: Some(confirmed.address.clone()),
            candidates: candidates.len(),
        };
    }
    // Unique-household fallback.
    let mut addresses: Vec<&str> = candidates.iter().map(|r| r.address.as_str()).collect();
    addresses.sort_unstable();
    addresses.dedup();
    if addresses.len() == 1 {
        return AddressLink {
            student,
            confidence: LinkConfidence::UniqueHousehold,
            address: Some(addresses[0].to_string()),
            candidates: candidates.len(),
        };
    }
    AddressLink {
        student,
        confidence: LinkConfidence::Ambiguous,
        address: None,
        candidates: candidates.len(),
    }
}

/// Aggregate linking outcomes over a set of students.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    pub students: usize,
    pub friend_confirmed: usize,
    pub unique_household: usize,
    pub ambiguous: usize,
    pub no_candidates: usize,
    /// Of the resolved addresses, how many are actually correct
    /// (evaluation against household ground truth).
    pub resolved_correct: usize,
    pub resolved_total: usize,
}

impl LinkStats {
    pub fn pct_resolved(&self) -> f64 {
        if self.students == 0 {
            0.0
        } else {
            100.0 * self.resolved_total as f64 / self.students as f64
        }
    }

    pub fn precision(&self) -> f64 {
        if self.resolved_total == 0 {
            0.0
        } else {
            100.0 * self.resolved_correct as f64 / self.resolved_total as f64
        }
    }
}

/// Run the linking over many students and score against ground truth.
pub fn link_students(
    net: &Network,
    roll: &VoterRoll,
    students: impl IntoIterator<Item = (UserId, String, CityId, Vec<UserId>)>,
) -> (Vec<AddressLink>, LinkStats) {
    let mut links = Vec::new();
    let mut stats = LinkStats::default();
    for (student, last_name, city, mut friends) in students {
        friends.sort_unstable();
        let link = link_address(roll, student, &last_name, city, &friends);
        stats.students += 1;
        match link.confidence {
            LinkConfidence::FriendListConfirmed => stats.friend_confirmed += 1,
            LinkConfidence::UniqueHousehold => stats.unique_household += 1,
            LinkConfidence::Ambiguous => stats.ambiguous += 1,
            LinkConfidence::NoCandidates => stats.no_candidates += 1,
        }
        if let Some(addr) = &link.address {
            stats.resolved_total += 1;
            let actual = net.households().of(student).map(|h| h.address.as_str());
            if actual == Some(addr.as_str()) {
                stats.resolved_correct += 1;
            }
        }
        links.push(link);
    }
    (links, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roll_with(records: Vec<VoterRecord>) -> VoterRoll {
        let mut roll = VoterRoll::default();
        for r in records {
            roll.push(r);
        }
        roll
    }

    fn rec(first: &str, last: &str, addr: &str, city: u32, osn: Option<u64>) -> VoterRecord {
        VoterRecord {
            first_name: first.into(),
            last_name: last.into(),
            address: addr.into(),
            city: CityId(city),
            osn_user: osn.map(UserId),
        }
    }

    #[test]
    fn friend_confirmation_beats_ambiguity() {
        let roll = roll_with(vec![
            rec("Ann", "Keller", "1 Oak St", 0, Some(50)),
            rec("Bob", "Keller", "9 Elm St", 0, Some(60)),
        ]);
        // Two Keller households — ambiguous — but voter u50 is in the
        // recovered friend list.
        let link = link_address(&roll, UserId(1), "Keller", CityId(0), &[UserId(50)]);
        assert_eq!(link.confidence, LinkConfidence::FriendListConfirmed);
        assert_eq!(link.address.as_deref(), Some("1 Oak St"));
        assert_eq!(link.candidates, 2);
    }

    #[test]
    fn unique_household_resolves_without_friends() {
        let roll = roll_with(vec![
            rec("Ann", "Keller", "1 Oak St", 0, None),
            rec("Cal", "Keller", "1 Oak St", 0, None), // same household
        ]);
        let link = link_address(&roll, UserId(1), "Keller", CityId(0), &[]);
        assert_eq!(link.confidence, LinkConfidence::UniqueHousehold);
        assert_eq!(link.address.as_deref(), Some("1 Oak St"));
    }

    #[test]
    fn multiple_households_are_ambiguous() {
        let roll = roll_with(vec![
            rec("Ann", "Keller", "1 Oak St", 0, None),
            rec("Bob", "Keller", "9 Elm St", 0, None),
        ]);
        let link = link_address(&roll, UserId(1), "Keller", CityId(0), &[]);
        assert_eq!(link.confidence, LinkConfidence::Ambiguous);
        assert!(link.address.is_none());
    }

    #[test]
    fn wrong_city_or_name_yields_no_candidates() {
        let roll = roll_with(vec![rec("Ann", "Keller", "1 Oak St", 0, None)]);
        assert_eq!(
            link_address(&roll, UserId(1), "Keller", CityId(1), &[]).confidence,
            LinkConfidence::NoCandidates
        );
        assert_eq!(
            link_address(&roll, UserId(1), "Nash", CityId(0), &[]).confidence,
            LinkConfidence::NoCandidates
        );
    }

    #[test]
    fn stats_percentages() {
        let stats = LinkStats {
            students: 10,
            friend_confirmed: 3,
            unique_household: 2,
            ambiguous: 4,
            no_candidates: 1,
            resolved_correct: 4,
            resolved_total: 5,
        };
        assert!((stats.pct_resolved() - 50.0).abs() < 1e-9);
        assert!((stats.precision() - 80.0).abs() < 1e-9);
    }
}
