//! First names for synthesised off-platform guardians on the voter roll.

use rand::Rng;

const GUARDIAN_FIRST: &[&str] = &[
    "Alice", "Brian", "Carol", "David", "Elaine", "Frank", "Gloria", "Harold", "Irene", "James",
    "Karen", "Louis", "Martha", "Norman", "Olive", "Peter", "Rita", "Steven", "Teresa", "Victor",
];

/// Draw a guardian first name.
pub fn guardian_first_name(rng: &mut impl Rng) -> String {
    GUARDIAN_FIRST[rng.gen_range(0..GUARDIAN_FIRST.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_from_pool_deterministically() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let n = guardian_first_name(&mut a);
            assert_eq!(n, guardian_first_name(&mut b));
            assert!(GUARDIAN_FIRST.contains(&n.as_str()));
        }
    }
}
