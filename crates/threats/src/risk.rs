//! Aggregate exposure scoring (paper §2, second threat, kept clinical).
//!
//! The paper's physical-safety discussion is about *prospecting*: which
//! discovered minors expose the combination of identifiers (address,
//! photos, direct-message channel, schedule anchors like school and
//! grade) that makes real-world targeting feasible. We aggregate an
//! exposure index per student — counts only, for policy analysis; the
//! experiments report distributions, never per-person output.

use crate::voter::{AddressLink, LinkConfidence};
use hsp_core::ConstructedProfile;
use serde::{Deserialize, Serialize};

/// Exposure components for one discovered student.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exposure {
    /// School + graduation year inferred (always true for discovered
    /// students — the baseline leak).
    pub school_and_grade: bool,
    /// A street address was resolved via record linking.
    pub address_resolved: bool,
    /// At least one photo is stranger-visible.
    pub photos_visible: bool,
    /// Direct message channel open to strangers.
    pub directly_messageable: bool,
    /// Friends known (direct or recovered) — social leverage.
    pub friends_known: bool,
}

impl Exposure {
    /// 0–5 component count.
    pub fn score(&self) -> u8 {
        u8::from(self.school_and_grade)
            + u8::from(self.address_resolved)
            + u8::from(self.photos_visible)
            + u8::from(self.directly_messageable)
            + u8::from(self.friends_known)
    }
}

/// Build the exposure record for one constructed profile + its address
/// link outcome.
pub fn exposure_of(profile: &ConstructedProfile, link: Option<&AddressLink>) -> Exposure {
    Exposure {
        school_and_grade: true,
        address_resolved: link
            .map(|l| {
                matches!(
                    l.confidence,
                    LinkConfidence::FriendListConfirmed | LinkConfidence::UniqueHousehold
                )
            })
            .unwrap_or(false),
        photos_visible: profile.photos_shared.unwrap_or(0) > 0,
        directly_messageable: profile.message_reachable,
        friends_known: !profile.known_friends.is_empty(),
    }
}

/// Distribution of exposure scores over a student set.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExposureDistribution {
    /// `counts[s]` = number of students with score `s` (0..=5).
    pub counts: [usize; 6],
}

impl ExposureDistribution {
    pub fn add(&mut self, e: &Exposure) {
        self.counts[e.score() as usize] += 1;
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Students with score ≥ k.
    pub fn at_least(&self, k: u8) -> usize {
        self.counts[k as usize..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::{CityId, SchoolId, UserId};

    fn profile(photos: Option<u32>, messageable: bool, friends: usize) -> ConstructedProfile {
        ConstructedProfile {
            user: UserId(1),
            name: "X Y".into(),
            gender: None,
            high_school: SchoolId(0),
            grad_year: 2014,
            est_birth_year: 1996,
            current_city: CityId(0),
            known_friends: (0..friends as u64).map(UserId).collect(),
            photos_shared: photos,
            relationship_visible: false,
            message_reachable: messageable,
        }
    }

    #[test]
    fn score_counts_components() {
        let link = AddressLink {
            student: UserId(1),
            confidence: LinkConfidence::UniqueHousehold,
            address: Some("1 Oak St".into()),
            candidates: 1,
        };
        let e = exposure_of(&profile(Some(5), true, 3), Some(&link));
        assert_eq!(e.score(), 5);
        let e = exposure_of(&profile(None, false, 0), None);
        assert_eq!(e.score(), 1); // school+grade only
    }

    #[test]
    fn ambiguous_link_does_not_count_as_address() {
        let link = AddressLink {
            student: UserId(1),
            confidence: LinkConfidence::Ambiguous,
            address: None,
            candidates: 4,
        };
        let e = exposure_of(&profile(None, false, 0), Some(&link));
        assert!(!e.address_resolved);
    }

    #[test]
    fn distribution_accumulates() {
        let mut d = ExposureDistribution::default();
        d.add(&Exposure { school_and_grade: true, ..Default::default() });
        d.add(&Exposure {
            school_and_grade: true,
            directly_messageable: true,
            photos_visible: true,
            ..Default::default()
        });
        assert_eq!(d.total(), 2);
        assert_eq!(d.counts[1], 1);
        assert_eq!(d.counts[3], 1);
        assert_eq!(d.at_least(2), 1);
        assert_eq!(d.at_least(0), 2);
    }
}
