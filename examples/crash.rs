//! Crash-only attacker, end to end: a *real* child process is killed
//! mid-journal-write (SIGABRT at an injected kill point, optionally
//! tearing the frame), then restarted against the same still-running
//! TCP platform — and must converge bit-identically with an
//! uninterrupted run. Also measures journal overhead on the realistic
//! transport — journaled vs volatile attacker children over TCP, with
//! group-commit batching. The gated number is the journal's *direct*
//! write-path cost as a fraction of the journaled attack's wall (both
//! measured in the same process, so host jitter cancels); the A/B
//! wall comparison is recorded alongside it as evidence. A headline
//! row goes to `BENCH_crash.json` at the workspace root;
//! `scripts/crash.sh` re-reads that row and enforces the ≤5% gate.
//!
//! ```sh
//! cargo run --release --example crash            # full gate
//! cargo run --release --example crash -- --smoke # single-rep overhead
//! ```
//!
//! The process model: the parent is "the internet" — it owns the two
//! simulated platforms (chaos faults + live churn armed) and serves
//! them over loopback TCP. Children are attacker processes: they build
//! a journaled [`ParallelCrawler`] over real sockets, recover whatever
//! their journal holds at startup (the startup path *is* the recovery
//! path), and print their outcome as one JSON line. The killed child
//! dies for real — `std::process::abort` — so everything in its memory
//! is gone; only the journal file and the platform survive.
//!
//! [`ParallelCrawler`]: hs_profiler::crawler::ParallelCrawler

use hs_profiler::core::{
    evaluate, run_basic, run_enhanced, AttackConfig, EnhanceOptions, GroundTruth,
};
use hs_profiler::crawler::{
    fold_state, recover, AccountSeat, CrawlError, Journal, KillPlan, OsnAccess, ParallelCrawler,
    ResumeState,
};
use hs_profiler::experiments::crash_lab::{
    baseline_on, crash_lab, killed_and_resumed_on, CRASH_ACCOUNTS, CRASH_MAX_ACCOUNTS,
    CRASH_SYNC_EVERY,
};
use hs_profiler::experiments::Ctx;
use hs_profiler::http::{Client, ResilientExchange, RetryPolicy, RetryStats};
use hs_profiler::obs::VirtualClock;
use hs_profiler::synth::{generate, Scenario};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xC4A5;
const WORKERS: usize = 2;
const CHURN: f64 = 1.0;

type TcpExchange = ResilientExchange<Client>;

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

// ---------------------------------------------------------------- child

fn make_seat(addr: SocketAddr, stats: &Arc<RetryStats>, i: u64) -> AccountSeat<TcpExchange> {
    let clock = VirtualClock::shared();
    AccountSeat {
        exchange: ResilientExchange::with_stats(
            Client::new(addr),
            RetryPolicy::seeded(SEED ^ i),
            Arc::clone(&clock),
            Arc::clone(stats),
        )
        .with_attempt_seq(),
        clock: Some(clock),
    }
}

/// Crash-only startup: recover the journal (a missing file is a legal
/// empty log), then resume or start fresh over TCP. `path: None` is
/// the volatile attacker — no journal at all, the overhead yardstick.
/// Seat minting follows the same convention as the in-process harness:
/// initial lane `i` is seat `i`, recruit lane `CRASH_ACCOUNTS + j` is
/// seat `CRASH_ACCOUNTS + 1 + j`.
fn child_crawler(
    addr: SocketAddr,
    path: Option<&Path>,
    kill: Option<KillPlan>,
) -> (ParallelCrawler<TcpExchange>, Option<ResumeState>, u64) {
    let (journal, state, recovery_us) = match path {
        None => (None, None, 0),
        Some(path) => {
            let t0 = Instant::now();
            let log = recover(path).expect("journal recovery");
            let state = fold_state(&log.records).expect("journal fold");
            let journal = match &state {
                Some(state) => Journal::create_with_base(path, state),
                None => Journal::create(path),
            }
            .expect("journal reopen")
            .with_sync_every(CRASH_SYNC_EVERY);
            let journal = match kill {
                Some(plan) => journal.with_kill_plan(plan),
                None => journal,
            };
            (Some(journal), state, t0.elapsed().as_micros() as u64)
        }
    };
    let stats = Arc::new(RetryStats::default());
    let crawler = match &state {
        Some(state) => {
            let seat_index = |lane: usize| -> u64 {
                if lane < CRASH_ACCOUNTS {
                    lane as u64
                } else {
                    (CRASH_ACCOUNTS + 1 + (lane - CRASH_ACCOUNTS)) as u64
                }
            };
            let seats: Vec<_> =
                (0..state.lanes.len()).map(|i| make_seat(addr, &stats, seat_index(i))).collect();
            let factory = {
                let stats = Arc::clone(&stats);
                let mut next = CRASH_ACCOUNTS as u64 + state.sched.recruited;
                move || {
                    next += 1;
                    make_seat(addr, &stats, next)
                }
            };
            ParallelCrawler::builder("crash")
                .workers(WORKERS)
                .retry_stats(stats)
                .recruit_with(factory, CRASH_MAX_ACCOUNTS)
                .journal(journal.expect("resume requires a journal"))
                .build_resumed(state, seats)
        }
        None => {
            let seats: Vec<_> =
                (0..CRASH_ACCOUNTS as u64).map(|i| make_seat(addr, &stats, i)).collect();
            let factory = {
                let stats = Arc::clone(&stats);
                let mut next = CRASH_ACCOUNTS as u64;
                move || {
                    next += 1;
                    make_seat(addr, &stats, next)
                }
            };
            let mut builder = ParallelCrawler::builder("crash")
                .workers(WORKERS)
                .retry_stats(stats)
                .recruit_with(factory, CRASH_MAX_ACCOUNTS);
            if let Some(journal) = journal {
                builder = builder.journal(journal);
            }
            builder.build(seats)
        }
    }
    .expect("child crawler");
    (crawler, state, recovery_us)
}

/// Same reduction as the in-process harness: FNV over the Table-2/4
/// outputs. Children are only ever compared against each other, so the
/// exact folding just has to be deterministic and total.
fn child_drive(
    scenario: &Scenario,
    access: &mut dyn OsnAccess,
) -> Result<(u64, usize), CrawlError> {
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );
    let t = config.school_size_estimate as usize;
    let discovery = run_basic(access, &config)?;
    let enhanced = run_enhanced(
        access,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: scenario.home_city },
    )?;
    let truth = GroundTruth::from_scenario(scenario);
    let guessed = enhanced.guessed_students(t);
    let eval = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv(&mut h, discovery.seeds.len() as u64);
    fnv(&mut h, discovery.core.len() as u64);
    fnv(&mut h, discovery.candidate_count() as u64);
    fnv(&mut h, guessed.len() as u64);
    for &u in &guessed {
        fnv(&mut h, u.0);
    }
    fnv(&mut h, eval.found as u64);
    fnv(&mut h, eval.correct_year as u64);
    fnv(&mut h, eval.guessed as u64);
    Ok((h, eval.found))
}

/// This process's user+system CPU seconds (`/proc/self/stat`), for
/// separating journal CPU cost from scheduler wall noise. 0.0 where
/// /proc is unavailable.
fn cpu_secs() -> f64 {
    let stat = match std::fs::read_to_string("/proc/self/stat") {
        Ok(s) => s,
        Err(_) => return 0.0,
    };
    // utime and stime are fields 14 and 15 (1-based), after the
    // parenthesized comm which may contain spaces.
    let after = match stat.rsplit_once(") ") {
        Some((_, rest)) => rest,
        None => return 0.0,
    };
    let fields: Vec<&str> = after.split_whitespace().collect();
    let ticks: f64 = fields.get(11).and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.0)
        + fields.get(12).and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.0);
    ticks / 100.0
}

fn child_main() -> ! {
    let addr: SocketAddr =
        std::env::var("CRASH_ADDR").expect("CRASH_ADDR").parse().expect("parse CRASH_ADDR");
    let path = std::env::var("CRASH_JOURNAL").ok().map(PathBuf::from);
    let kill = std::env::var("CRASH_KILL_AFTER").ok().map(|n| {
        let after: u64 = n.parse().expect("parse CRASH_KILL_AFTER");
        match std::env::var("CRASH_KILL_TORN").ok().and_then(|t| t.parse::<usize>().ok()) {
            Some(torn) => KillPlan::torn(after, torn),
            None => KillPlan::after(after),
        }
    });
    let cfg_name = std::env::var("CRASH_CFG").unwrap_or_else(|_| "TINY".to_string());
    let scenario = generate(&Ctx::config_for(&cfg_name));
    // Time the whole attacker lifetime past world setup: recovery,
    // crawler build, and the full crawl — journaling cost included.
    let cpu0 = cpu_secs();
    let t0 = Instant::now();
    let (mut crawler, state, recovery_us) = child_crawler(addr, path.as_deref(), kill);
    let resumed = state.is_some();
    match child_drive(&scenario, &mut crawler) {
        Ok((digest, found)) => {
            let effort = crawler.effort();
            // Force the deferred group fsync now so the journal's own
            // write-path clock covers the whole durable run, then read
            // it: the direct journaling cost, measured in-process.
            let journal_secs = match crawler.journal_mut() {
                Some(journal) => {
                    journal.sync().expect("final journal sync");
                    journal.time_spent().as_secs_f64()
                }
                None => 0.0,
            };
            drop(crawler);
            let attack_secs = t0.elapsed().as_secs_f64();
            let attack_cpu_secs = cpu_secs() - cpu0;
            println!(
                "{}",
                serde_json::json!({
                    "digest": format!("{digest:016x}"),
                    "found": found,
                    "effort": effort,
                    "resumed": resumed,
                    "recovery_us": recovery_us,
                    "attack_secs": attack_secs,
                    "attack_cpu_secs": attack_cpu_secs,
                    "journal_secs": journal_secs,
                })
            );
            std::process::exit(0)
        }
        Err(CrawlError::BadPage("journal kill point")) => {
            // Die for real, mid-write: no unwinding, no Drop, no
            // flush — exactly what SIGKILL at a power cut looks like.
            eprintln!("[child] kill point reached; aborting process");
            std::process::abort()
        }
        Err(e) => {
            eprintln!("[child] crawl failed: {e:?}");
            std::process::exit(1)
        }
    }
}

// --------------------------------------------------------------- parent

fn spawn_child(
    addr: SocketAddr,
    journal: Option<&Path>,
    kill: Option<(u64, Option<usize>)>,
) -> std::process::Output {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.env("CRASH_CHILD", "1").env("CRASH_ADDR", addr.to_string());
    if let Ok(cfg) = std::env::var("CRASH_CFG") {
        cmd.env("CRASH_CFG", cfg);
    }
    if let Some(journal) = journal {
        cmd.env("CRASH_JOURNAL", journal);
    }
    if let Some((after, torn)) = kill {
        cmd.env("CRASH_KILL_AFTER", after.to_string());
        if let Some(torn) = torn {
            cmd.env("CRASH_KILL_TORN", torn.to_string());
        }
    }
    cmd.output().expect("spawn child")
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("child result missing `{key}`"))
}

fn child_json(out: &std::process::Output) -> serde_json::Value {
    assert!(
        out.status.success(),
        "child failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().last().expect("child printed a result line");
    serde_json::from_str(line).expect("child result parses")
}

fn append_headline(row: serde_json::Value) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_crash.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    runs.as_array_mut().expect("array").push(row);
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[crash] appended 1 row to BENCH_crash.json");
        }
    }
}

fn main() {
    if std::env::var("CRASH_CHILD").is_ok() {
        child_main();
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let max_overhead_pct: f64 =
        std::env::var("CRASH_MAX_OVERHEAD_PCT").ok().and_then(|v| v.parse().ok()).unwrap_or(5.0);
    let cfg_name = std::env::var("CRASH_CFG").unwrap_or_else(|_| "TINY".to_string());
    let cfg = Ctx::config_for(&cfg_name);
    // Keep journals on a local-memory filesystem when one exists: CI
    // containers often mount /tmp over 9p/NFS, where every write and
    // fsync is a millisecond-scale protocol round trip — that measures
    // the mount, not the journal. (A real attacker puts the WAL on a
    // local disk too.)
    let shm = PathBuf::from("/dev/shm");
    let dir = if shm.is_dir() { shm } else { std::env::temp_dir() }.join("hsp-crash-example");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // ---- 1. journaling changes nothing (in-process equivalence) ----
    let overhead_path = dir.join("equivalence.journal");
    let _ = std::fs::remove_file(&overhead_path);
    let lab = crash_lab(&cfg, CHURN);
    let t0 = Instant::now();
    let bare = baseline_on(&lab, SEED, WORKERS, None);
    let bare_secs = t0.elapsed().as_secs_f64();
    let lab = crash_lab(&cfg, CHURN);
    let t0 = Instant::now();
    let yardstick = baseline_on(&lab, SEED, WORKERS, Some(&overhead_path));
    let journaled_inproc_secs = t0.elapsed().as_secs_f64();
    assert_eq!(bare.digest, yardstick.digest, "journaling changed the outcome");
    assert_eq!(bare.effort, yardstick.effort, "journaling changed the effort ledger");
    assert_eq!(bare.trace_digest, yardstick.trace_digest, "journaling changed the trace");
    println!(
        "journaling equivalence: digest, effort ledger, and trace identical \
         ({} journal bytes; in-process {bare_secs:.3}s bare vs \
         {journaled_inproc_secs:.3}s journaled)",
        yardstick.journal_bytes
    );

    // ---- 2. in-process kill sweep spot check (torn tail) ----
    let committed =
        recover(&overhead_path).expect("overhead journal readable").records.len() as u64;
    let trial_path = dir.join("inproc.journal");
    let lab = crash_lab(&cfg, CHURN);
    let trial = killed_and_resumed_on(
        &lab,
        SEED,
        WORKERS,
        KillPlan::torn((committed / 2).max(3), 7),
        &trial_path,
    );
    assert!(!trial.completed_before_kill, "kill point never fired");
    assert_eq!(trial.resumes, 1);
    assert_eq!(trial.outcome.digest, yardstick.digest, "in-process resume digest drifted");
    assert_eq!(trial.outcome.effort, yardstick.effort, "in-process resume effort drifted");
    println!(
        "in-process torn-tail kill at record {}: recovered {} records, discarded {}, \
         torn {} B, recovery {} us, resume bit-identical",
        trial.kill_after,
        trial.recovered_records,
        trial.discarded_records,
        trial.torn_bytes,
        trial.recovery_us
    );

    // ---- 3. journal overhead on the real transport, min-of-N ----
    // Volatile vs journaled attacker children over TCP, each on a
    // fresh identically-seeded platform, each self-timing its own
    // recovery + build + crawl. The journaled child of the last rep
    // doubles as the process-kill yardstick.
    // 8 order-alternated reps: each rep runs a volatile and a
    // journaled child back to back (order flipped every rep) and both
    // overhead estimators take medians across reps; --smoke drops to 2
    // (functional coverage only — its overhead number is informational,
    // not gated).
    let reps: usize = std::env::var("CRASH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 8 });
    let journal_y = dir.join("tcp-yardstick.journal");
    let (mut best_volatile, mut best_journaled) = (f64::INFINITY, f64::INFINITY);
    let (mut best_volatile_cpu, mut best_journaled_cpu) = (f64::INFINITY, f64::INFINITY);
    let mut ratios: Vec<f64> = Vec::new();
    let mut direct_pcts: Vec<f64> = Vec::new();
    let mut last = None;
    for rep in 0..reps {
        // Alternate which mode runs first so cache/turbo warm-up bias
        // cannot systematically favor one side.
        let run_volatile = |best: &mut f64, best_cpu: &mut f64| {
            let mut lab = crash_lab(&cfg, CHURN);
            let addr = lab.serve().expect("serve volatile platform");
            let v = child_json(&spawn_child(addr, None, None));
            *best = best.min(field(&v, "attack_secs").as_f64().expect("volatile attack_secs"));
            *best_cpu = best_cpu.min(field(&v, "attack_cpu_secs").as_f64().unwrap_or(0.0));
            v
        };
        let run_journaled = |best: &mut f64, best_cpu: &mut f64| {
            let mut lab = crash_lab(&cfg, CHURN);
            let addr = lab.serve().expect("serve journaled platform");
            let _ = std::fs::remove_file(&journal_y);
            let j = child_json(&spawn_child(addr, Some(&journal_y), None));
            *best = best.min(field(&j, "attack_secs").as_f64().expect("journaled attack_secs"));
            *best_cpu = best_cpu.min(field(&j, "attack_cpu_secs").as_f64().unwrap_or(0.0));
            j
        };
        let (v, j) = if rep % 2 == 0 {
            let v = run_volatile(&mut best_volatile, &mut best_volatile_cpu);
            let j = run_journaled(&mut best_journaled, &mut best_journaled_cpu);
            (v, j)
        } else {
            let j = run_journaled(&mut best_journaled, &mut best_journaled_cpu);
            let v = run_volatile(&mut best_volatile, &mut best_volatile_cpu);
            (v, j)
        };
        assert_eq!(field(&v, "digest"), field(&j, "digest"), "journaling changed the TCP outcome");
        assert_eq!(field(&v, "effort"), field(&j, "effort"), "journaling changed the TCP effort");
        let vs = field(&v, "attack_secs").as_f64().expect("volatile attack_secs");
        let js = field(&j, "attack_secs").as_f64().expect("journaled attack_secs");
        let jd = field(&j, "journal_secs").as_f64().expect("journal_secs");
        eprintln!(
            "[crash] rep {rep}: volatile {vs:.3}s, journaled {js:.3}s ({:+.1}%), \
             journal write path {:.1}ms ({:.2}% of attack){}",
            (js / vs - 1.0) * 100.0,
            jd * 1e3,
            jd / js * 100.0,
            if rep % 2 == 0 { "" } else { " (journaled first)" }
        );
        ratios.push(js / vs);
        direct_pcts.push(jd / js * 100.0);
        last = Some(j);
    }
    let y = last.expect("at least one rep");
    // Two overhead numbers come out of the sweep:
    //
    // - `direct_pct` (gated): the journal's own write-path clock —
    //   encode + group flush + fdatasync + reopen — as a fraction of
    //   the journaled child's attack wall, median across reps. Both
    //   quantities come from the same process, so host scheduling
    //   jitter cancels; this is the number the <=5% gate holds.
    //   It over-counts if anything: none of that time is hidden
    //   behind network waits in this accounting.
    // - `ab_pct` (recorded, informational): the classic A/B wall
    //   comparison, median of per-rep journaled/volatile ratios plus
    //   min-of-N floors. On a quiet machine it lands near zero; under
    //   a noisy hypervisor single reps of this deterministic workload
    //   swing +-40% and no feasible rep count can hold a 5% bound, so
    //   it is evidence, not a gate.
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    direct_pcts.sort_by(|a, b| a.partial_cmp(b).expect("finite pcts"));
    let ab_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let direct_pct = direct_pcts[direct_pcts.len() / 2];
    let floor_pct = (best_journaled / best_volatile - 1.0) * 100.0;
    println!(
        "journal overhead over TCP: direct write-path cost {direct_pct:.2}% of attack wall \
         (median of {reps} journaled reps, fdatasync every {CRASH_SYNC_EVERY} groups); \
         A/B wall {ab_pct:+.2}% (median paired ratio), floors volatile {best_volatile:.3}s vs \
         journaled {best_journaled:.3}s ({floor_pct:+.2}%), cpu {best_volatile_cpu:.3}s vs \
         {best_journaled_cpu:.3}s"
    );

    // ---- 4. real process kill over TCP ----
    // The victim child is killed against its own platform and its
    // successor resumes there — same surviving platform — then must
    // match the uninterrupted yardstick child bit for bit.
    let tcp_committed =
        recover(&journal_y).expect("yardstick journal readable").records.len() as u64;
    let mut lab_k = crash_lab(&cfg, CHURN);
    let addr_k = lab_k.serve().expect("serve kill platform");
    let journal_k = dir.join("tcp-kill.journal");
    let _ = std::fs::remove_file(&journal_k);
    println!(
        "yardstick child (uninterrupted, TCP): digest {} found {}",
        field(&y, "digest"),
        field(&y, "found")
    );

    let kill_after = (tcp_committed / 2).max(3);
    let killed = spawn_child(addr_k, Some(&journal_k), Some((kill_after, Some(7))));
    assert!(
        !killed.status.success(),
        "victim child survived its kill point: {}",
        String::from_utf8_lossy(&killed.stdout)
    );
    assert!(
        killed.stdout.is_empty(),
        "victim child printed a result before dying: {}",
        String::from_utf8_lossy(&killed.stdout)
    );
    println!(
        "victim child killed at journal record {kill_after} (torn frame): exit {}",
        killed.status
    );

    let r = child_json(&spawn_child(addr_k, Some(&journal_k), None));
    assert_eq!(field(&r, "resumed"), &serde_json::json!(true), "successor child did not resume");
    assert_eq!(
        field(&r, "digest"),
        field(&y, "digest"),
        "process-kill resume: outcome digest drifted"
    );
    assert_eq!(field(&r, "found"), field(&y, "found"), "process-kill resume: found drifted");
    assert_eq!(
        field(&r, "effort"),
        field(&y, "effort"),
        "process-kill resume: effort ledger drifted"
    );
    println!(
        "successor child resumed from the journal in {} us and converged bit-identically \
         (digest {}, found {})",
        field(&r, "recovery_us"),
        field(&r, "digest"),
        field(&r, "found")
    );

    // ---- 5. headline row + gate ----
    append_headline(serde_json::json!({
        "bench": "crash",
        "config": cfg_name,
        "smoke": smoke,
        "reps": reps,
        "sync_every_groups": CRASH_SYNC_EVERY,
        "volatile_secs": best_volatile,
        "journaled_secs": best_journaled,
        "journal_direct_pct": direct_pct,
        "ab_overhead_pct": ab_pct,
        "journal_bytes": yardstick.journal_bytes,
        "committed_records": committed,
        "tcp_committed_records": tcp_committed,
        "inproc_kill_after": trial.kill_after,
        "inproc_recovered_records": trial.recovered_records,
        "inproc_discarded_records": trial.discarded_records,
        "inproc_torn_bytes": trial.torn_bytes,
        "inproc_recovery_us": trial.recovery_us,
        "process_kill_after": kill_after,
        "process_resume_recovery_us": field(&r, "recovery_us"),
        "process_resume_bit_identical": true,
        "found": yardstick.found,
    }));
    if smoke {
        println!(
            "crash smoke complete: direct journal cost {direct_pct:.2}% of attack wall \
             (informational at {reps} reps), in-process and process-level resumes bit-identical"
        );
    } else {
        assert!(
            direct_pct <= max_overhead_pct,
            "journal write-path cost {direct_pct:.2}% of attack wall exceeds the \
             {max_overhead_pct:.1}% gate"
        );
        println!(
            "crash gate complete: direct journal cost {direct_pct:.2}% (<= {max_overhead_pct:.1}%, \
             A/B wall {ab_pct:+.2}%), in-process and process-level resumes bit-identical"
        );
    }
}
