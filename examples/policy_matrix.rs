//! Print the stranger-visibility matrices (paper Tables 1 and 6) by
//! probing the Facebook and Google+ policy engines with default /
//! worst-case, registered-minor / registered-adult accounts.
//!
//! ```sh
//! cargo run --example policy_matrix
//! ```

use hs_profiler::policy::{facebook_matrix, googleplus_matrix};

fn main() {
    println!("Table 1 — Facebook: information available to strangers\n");
    println!("{}", facebook_matrix().render());
    println!("\nTable 6 — Google+: information available to strangers\n");
    println!("{}", googleplus_matrix().render());
    println!(
        "\nNote the structural difference the paper highlights: Facebook hard-caps what a\n\
         registered minor can expose (the 'Worst minor' column stays minimal), while\n\
         Google+ protects minors only through defaults — a minor who maximises sharing\n\
         exposes nearly everything. Both exclude registered minors from school search,\n\
         which is the protection the age-lying pivot defeats."
    );
}
