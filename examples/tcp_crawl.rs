//! TCP crawl: the same attack as `quickstart`, but over a real
//! loopback HTTP server — every page the attacker sees travels through
//! the from-scratch HTTP/1.1 stack (`hsp-http`), exactly as the paper's
//! crawler fetched real web pages. (For the attack against a world that
//! mutates *during* the crawl, see `examples/live_world.rs`.)
//!
//! ```sh
//! cargo run --release --example tcp_crawl
//! ```

use hs_profiler::core::{evaluate, run_basic, AttackConfig, GroundTruth};
use hs_profiler::crawler::{Crawler, OsnAccess};
use hs_profiler::http::{Client, Server};
use hs_profiler::platform::{Platform, PlatformConfig};
use hs_profiler::policy::FacebookPolicy;
use hs_profiler::synth::{generate, ScenarioConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scenario = generate(&ScenarioConfig::tiny());
    println!("world: {}", scenario.summary());

    // Serve the OSN on an ephemeral loopback port.
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let server = Server::start(platform.into_handler()).expect("bind loopback");
    println!("simulated OSN listening on {}", server.base_url());

    // Attack over real sockets: two fake accounts, keep-alive
    // connections, cookies, AJAX paging — the whole §3.2 pipeline.
    let exchanges: Vec<Client> = (0..2).map(|_| Client::new(server.addr())).collect();
    let mut crawler = Crawler::new(exchanges, "live").expect("crawler");
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );

    let started = Instant::now();
    let discovery = run_basic(&mut crawler, &config).expect("basic methodology over TCP");
    let elapsed = started.elapsed();

    let effort = crawler.effort();
    println!(
        "crawl: {} over TCP in {elapsed:.2?} ({:.0} req/s actual)",
        effort,
        effort.total() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "a polite crawler sleeping 1.5 s between requests would have taken ~{:.1} minutes \
         (paper §3.2's sleeping functions)",
        crawler.virtual_elapsed_ms() as f64 / 60_000.0
    );

    let truth = GroundTruth::from_scenario(&scenario);
    let t = config.school_size_estimate as usize;
    let guessed = discovery.guessed_students(t);
    let point = evaluate(t, &guessed, |u| discovery.inferred_year(u), &truth);
    println!(
        "basic methodology over live HTTP: {}/{} students found ({:.0}%), {} false positives",
        point.found,
        truth.len(),
        point.pct_found(truth.len()),
        point.false_positives
    );

    server.shutdown();
}
