//! City sweep: the paper's §1 threat scenario — "by profiling all the
//! high schools in a city, a third-party can discover and develop
//! profiles for most of the minors, ages 14–17, in that city".
//!
//! We run the full attack against three schools and assemble the
//! data-broker-style deliverable: per-student constructed profiles with
//! name, school, graduation year, estimated birth year, current city,
//! recovered friend lists, and whether the student is directly
//! messageable (the spear-phishing channel).
//!
//! By default this sweeps three small worlds; pass `--full` to sweep
//! the HS1/HS2/HS3-scale worlds (use `--release`).
//!
//! ```sh
//! cargo run --release --example city_sweep [-- --full]
//! ```

use hs_profiler::core::{construct_profile, recover_friend_lists, ConstructedProfile};
use hs_profiler::experiments::{full_attack, Lab};
use hs_profiler::synth::ScenarioConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let configs: Vec<ScenarioConfig> = if full {
        vec![ScenarioConfig::hs1(), ScenarioConfig::hs2(), ScenarioConfig::hs3()]
    } else {
        // Three distinct small schools (different seeds = different towns).
        (0..3u64)
            .map(|i| {
                let mut cfg = ScenarioConfig::tiny();
                cfg.name = format!("TOWN-HS{}", i + 1);
                cfg.seed ^= 0x1111 * (i + 1);
                cfg
            })
            .collect()
    };

    let mut dossiers: Vec<ConstructedProfile> = Vec::new();
    for cfg in &configs {
        let mut lab = Lab::facebook(cfg);
        let mut run = full_attack(&mut lab, false);
        let t = run.config.school_size_estimate as usize;
        let guessed = run.enhanced.guessed_students(t);
        let rec = recover_friend_lists(run.access.as_mut(), &guessed).expect("reverse lookup");
        let school_city = lab.scenario.home_city;
        let mut school_count = 0;
        for &u in &guessed {
            let Some(year) = run.enhanced.inferred_year(u, &run.config) else { continue };
            let profile = run.access.profile(u).expect("profile");
            dossiers.push(construct_profile(
                &profile,
                u,
                lab.scenario.school,
                school_city,
                year,
                rec.friends_of(u).to_vec(),
            ));
            school_count += 1;
        }
        println!(
            "{}: profiled {} suspected students (crawl effort: {})",
            cfg.name,
            school_count,
            run.access.effort()
        );
    }

    // The aggregate a data broker would buy (paper §2, first threat).
    let messageable = dossiers.iter().filter(|d| d.message_reachable).count();
    let with_friends = dossiers.iter().filter(|d| !d.known_friends.is_empty()).count();
    let with_photos = dossiers.iter().filter(|d| d.photos_shared.unwrap_or(0) > 0).count();
    let avg_friends = dossiers.iter().map(|d| d.known_friends.len()).sum::<usize>() as f64
        / dossiers.len().max(1) as f64;
    println!("\n== city-wide dossier ==");
    println!("profiles constructed:            {}", dossiers.len());
    println!("with known friend lists:         {with_friends} (avg {avg_friends:.0} friends)");
    println!("directly messageable (phishing): {messageable}");
    println!("with stranger-visible photos:    {with_photos}");

    // One sample dossier (synthetic person — no real data anywhere).
    if let Some(d) = dossiers.iter().max_by_key(|d| d.known_friends.len()) {
        println!("\nsample dossier (richest friend list):");
        println!("  name:            {}", d.name);
        println!("  school:          {} (class of {})", d.high_school, d.grad_year);
        println!("  est. birth year: {}", d.est_birth_year);
        println!("  current city:    {}", d.current_city);
        println!("  known friends:   {}", d.known_friends.len());
        println!("  messageable:     {}", d.message_reachable);
    }
}
