//! Metro-scale benchmark: build a city of schools (≥1M users in the
//! full config), verify thread-invariant generation, then run the
//! city-wide concurrent attack at 1 and 8 crawl workers per school and
//! check the per-school Table-4 results are bit-identical. Appends a
//! row to `BENCH_metro.json` at the workspace root.
//!
//! ```sh
//! cargo run --release --example metro            # full city, hard gates
//! cargo run --release --example metro -- --smoke # tiny config, CI gate
//! ```
//!
//! Hard gates (full config only):
//! - world size ≥ 1,000,000 users;
//! - build throughput ≥ `METRO_MIN_UPS` users/s (default 1,000,000);
//! - peak RSS after build ≤ 4 GiB (`VmHWM`, falling back to `VmRSS` on
//!   kernels that don't report a high-water mark);
//! - per-school attack results identical at 1 and 8 workers.

use hs_profiler::experiments::metro_lab::{MetroLab, SchoolOutcome};
use hs_profiler::obs::read_memory;
use hs_profiler::synth::{metro_sharded, MetroConfig};
use std::time::Instant;

const SEED: u64 = 0x3e7_a77a;
const GIB: u64 = 1 << 30;

fn min_users_per_sec() -> f64 {
    std::env::var("METRO_MIN_UPS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000.0)
}

fn run_attack(lab: &MetroLab, workers: usize, school_threads: usize) -> (Vec<SchoolOutcome>, f64) {
    let started = Instant::now();
    let outcomes = lab.city_attack(workers, school_threads, SEED);
    (outcomes, started.elapsed().as_secs_f64())
}

fn append_headline(row: serde_json::Value) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_metro.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    let Some(arr) = runs.as_array_mut() else { return };
    arr.push(row);
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[metro] appended 1 row to BENCH_metro.json");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (label, cfg) =
        if smoke { ("tiny", MetroConfig::tiny()) } else { ("city", MetroConfig::city()) };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let school_threads = threads.max(2);
    println!(
        "metro {label}: {} schools x {} students (+{} alumni, +{} parents), pool {} -> {} users",
        cfg.schools,
        cfg.students_per_school,
        cfg.alumni_per_school,
        cfg.parents_per_school,
        cfg.pool_users,
        cfg.total_users(),
    );

    // ---- build sweep (each thread point timed; 1-thread point is the
    // thread-invariance witness) --------------------------------------
    let points: Vec<usize> = if threads > 1 { vec![1, threads] } else { vec![1] };
    let mut synth_rows = Vec::new();
    let mut world = None;
    println!("{:>7}  {:>9}  {:>9}  {:>12}", "threads", "users", "real-s", "users/s");
    for &t in &points {
        let started = Instant::now();
        let w = metro_sharded(&cfg, t);
        let secs = started.elapsed().as_secs_f64();
        let users = w.network.user_count();
        let ups = users as f64 / secs.max(1e-9);
        println!("{t:>7}  {users:>9}  {secs:>9.3}  {ups:>12.0}");
        synth_rows.push((t, secs, ups, w.network.fingerprint()));
        world = Some(w); // keep the last (widest) build for the attack
    }
    let world = world.expect("at least one build point");
    let users = world.network.user_count();
    let fingerprint = synth_rows[0].3;
    for &(t, _, _, fp) in &synth_rows[1..] {
        assert_eq!(fp, fingerprint, "fingerprint drifted at {t} threads");
    }
    let (synth_secs, users_per_sec) = synth_rows
        .iter()
        .map(|&(_, secs, ups, _)| (secs, ups))
        .fold((f64::MAX, 0.0_f64), |(bs, bu), (s, u)| (bs.min(s), bu.max(u)));
    let peak = read_memory().peak_estimate_bytes().unwrap_or(0);
    println!(
        "best build: {users} users in {synth_secs:.3}s ({users_per_sec:.0} users/s), \
         fingerprint identical at all thread counts: {fingerprint:#018x}",
    );
    println!("peak RSS after build: {:.2} GiB", peak as f64 / GIB as f64);

    // ---- city-wide attack, 1 worker per school ----------------------
    let lab = MetroLab::mount(world);
    let (one, attack_secs_w1) = run_attack(&lab, 1, school_threads);
    let exposure = MetroLab::exposure(&one);
    drop(lab);
    println!(
        "attack (1 worker/school, {school_threads} schools in flight): \
         {}/{} students identified ({:.1}%) in {attack_secs_w1:.2}s, {} requests",
        exposure.students_found,
        exposure.students_total,
        exposure.pct_found(),
        exposure.requests_total,
    );

    // ---- rebuild (untimed) for the 8-worker lab ---------------------
    let world = metro_sharded(&cfg, threads);

    // ---- city-wide attack, 8 workers per school ---------------------
    let lab = MetroLab::mount(world);
    let (eight, attack_secs_w8) = run_attack(&lab, 8, school_threads);
    drop(lab);
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a.digest(), b.digest(), "school {} diverged between 1 and 8 workers", a.school);
        assert_eq!(a.guessed, b.guessed, "guess list for {} diverged", a.school);
    }
    println!(
        "determinism: per-school Table-4 digests identical at 1 and 8 workers \
         (8-worker attack took {attack_secs_w8:.2}s)"
    );

    // Worst and best schools, for flavor.
    if let (Some(lo), Some(hi)) = (
        one.iter().min_by(|a, b| a.eval.found.cmp(&b.eval.found)),
        one.iter().max_by(|a, b| a.eval.found.cmp(&b.eval.found)),
    ) {
        println!(
            "per-school range: {} found {}/{} .. {} found {}/{}",
            lo.school, lo.eval.found, lo.roster, hi.school, hi.eval.found, hi.roster
        );
    }

    append_headline(serde_json::json!({
        "bench": "metro",
        "config": label,
        "users": users as u64,
        "schools": cfg.schools,
        "synth_threads": threads as u64,
        "synth_secs": synth_secs,
        "synth_users_per_sec": users_per_sec,
        "synth_points": synth_rows
            .iter()
            .map(|&(t, secs, ups, _)| {
                serde_json::json!({ "threads": t as u64, "secs": secs, "users_per_sec": ups })
            })
            .collect::<Vec<_>>(),
        "fingerprint": format!("{fingerprint:#018x}"),
        "peak_rss_bytes": peak,
        "attack_school_threads": school_threads as u64,
        "attack_secs_w1": attack_secs_w1,
        "attack_secs_w8": attack_secs_w8,
        "requests_total": exposure.requests_total,
        "students_total": exposure.students_total as u64,
        "students_found": exposure.students_found as u64,
        "pct_found": exposure.pct_found(),
        "deterministic": true,
    }));

    if !smoke {
        assert!(users >= 1_000_000, "metro world must have >=1M users, got {users}");
        let floor = min_users_per_sec();
        assert!(
            users_per_sec >= floor,
            "build throughput {users_per_sec:.0} users/s below the {floor:.0} gate"
        );
        assert!(
            peak > 0 && peak <= 4 * GIB,
            "peak RSS {:.2} GiB outside the 4 GiB gate",
            peak as f64 / GIB as f64
        );
        println!("gates (>=1M users, >= {:.0} users/s, <=4 GiB, 1==8 workers): PASS", floor);
    }
}
