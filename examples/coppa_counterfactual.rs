//! COPPA counterfactual (paper §7): compare the attacker's yield in the
//! current world (where under-13s lied at sign-up and are now "minors
//! registered as adults") against a world without the age restriction
//! (everyone registered truthfully).
//!
//! The paper's headline irony: **with** COPPA the attacker finds ~64 %
//! of the minimal-profile students with ~70 false positives; **without**
//! COPPA a comparable yield costs ~4,480 false positives — the law's age
//! gate indirectly made minors easier to find.
//!
//! ```sh
//! cargo run --release --example coppa_counterfactual [-- --full]
//! ```

use hs_profiler::core::{run_coppaless_heuristic, score_minimal_set, CoppalessOptions};
use hs_profiler::experiments::{full_attack, Lab};
use hs_profiler::policy::{FacebookPolicy, Policy};
use hs_profiler::synth::ScenarioConfig;

fn minimal_students(lab: &Lab) -> Vec<hs_profiler::graph::UserId> {
    let policy = FacebookPolicy::new();
    let mut v: Vec<_> = lab
        .scenario
        .roster()
        .into_iter()
        .filter(|&u| policy.stranger_view(&lab.scenario.network, u).is_minimal())
        .collect();
    v.sort_unstable();
    v
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full { ScenarioConfig::hs1() } else { ScenarioConfig::tiny() };

    // ---- the current world (with COPPA, children lied) -----------------
    let mut lab = Lab::facebook(&cfg);
    let mut run = full_attack(&mut lab, false);
    let minimal = minimal_students(&lab);
    println!(
        "with-COPPA world: {} students on the OSN, {} with minimal public profiles",
        lab.scenario.roster().len(),
        minimal.len()
    );
    let t = run.config.school_size_estimate as usize;
    let guessed = run.enhanced.guessed_students(t);
    let mut minimal_guessed = Vec::new();
    for &u in &guessed {
        if run.access.profile(u).expect("profile").is_minimal() {
            minimal_guessed.push(u);
        }
    }
    minimal_guessed.sort_unstable();
    let with = score_minimal_set(t, &minimal_guessed, &minimal);
    println!(
        "  attack yield: {} of {} minimal-profile students ({:.0}%), {} false positives",
        with.found,
        minimal.len(),
        with.pct_found,
        with.false_positives
    );

    // ---- the counterfactual world (no age gate, truthful sign-ups) ------
    let cl_cfg = cfg.without_coppa();
    let cl_lab = Lab::facebook(&cl_cfg);
    let cl_minimal = minimal_students(&cl_lab);
    println!(
        "\nwithout-COPPA world: {} students, {} with minimal public profiles \
         (nearly all — nobody is a registered adult)",
        cl_lab.scenario.roster().len(),
        cl_minimal.len()
    );
    let config = cl_lab.attack_config();
    let mut access = cl_lab.crawler(2, "cl");
    for n in [1u32, 2, 3] {
        let heur = run_coppaless_heuristic(
            access.as_mut(),
            &config,
            &CoppalessOptions { alumni_years_back: 2, min_core_friends: n },
        )
        .expect("heuristic");
        let point = score_minimal_set(n as usize, &heur.guessed, &cl_minimal);
        println!(
            "  §7.1 heuristic (n={n}): {} of {} students found ({:.0}%), {} false positives",
            point.found,
            cl_minimal.len(),
            point.pct_found,
            point.false_positives
        );
    }
    println!(
        "\nconclusion: for comparable coverage the without-COPPA attacker pays an order of \
         magnitude more false positives, and the students it finds cannot be classified by \
         graduation year or given friend lists (paper §7.3)."
    );
}
