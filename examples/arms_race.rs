//! Defender arms race: sweep the platform's sybil-detector strength
//! tiers against the naive and the adaptive crawler on the full HS1
//! attack, gate the frontier, and append the rows to
//! `BENCH_defense.json` at the workspace root.
//!
//! ```sh
//! cargo run --release --example arms_race          # or scripts/arms_race.sh
//! ARMS_SCENARIO=tiny cargo run --release --example arms_race   # CI smoke
//! ```
//!
//! Gates (the run panics if any fails):
//! - `DetectorStrength::Off` reproduces the undefended baseline attack
//!   bit-for-bit: same Table-4 numbers, same effort ledger, same
//!   virtual wall-clock.
//! - Per crawler mode, the session detection rate is monotone
//!   non-decreasing in detector strength.
//! - The strongest tier detects at least 50% of the naive crawler's
//!   long-lived sessions.
//! - The naive attacker's virtual wall-clock cost is monotone
//!   non-decreasing in detector strength.
//! - Rows are deterministic per seed (the High/adaptive cell is run
//!   twice and must reproduce exactly).

use hs_profiler::core::{evaluate, run_basic, run_enhanced, EnhanceOptions};
use hs_profiler::crawler::{AdaptiveStrategy, CrawlError, Effort, OsnAccess};
use hs_profiler::experiments::runner::Lab;
use hs_profiler::platform::{DefenseConfig, DetectorStrength};
use hs_profiler::synth::ScenarioConfig;

const SEED: u64 = 0x9d5f_2013;

/// Denominator floor for the detection rate: sessions that lived at
/// least as long as the weakest tier needs to form an opinion, so
/// short-lived recruits don't dilute strong-tier rates.
const SESSION_FLOOR: u64 = 48;

const STRENGTHS: [DetectorStrength; 4] = [
    DetectorStrength::Off,
    DetectorStrength::Low,
    DetectorStrength::Medium,
    DetectorStrength::High,
];

#[derive(Clone, PartialEq, Debug)]
struct Cell {
    strength: DetectorStrength,
    mode: &'static str,
    completed: bool,
    error: Option<String>,
    found: usize,
    correct_year: usize,
    false_positives: usize,
    sessions_eligible: u64,
    sessions_flagged: u64,
    detection_pm: u64,
    effort: Effort,
    suspensions: u64,
    recruited: u64,
    virtual_minutes: f64,
}

/// The full basic+enhanced attack, with errors reported instead of
/// panicking — being crawled to death by the detector is a legitimate
/// data point.
fn attack(lab: &Lab, access: &mut dyn OsnAccess) -> Result<(usize, usize, usize), CrawlError> {
    let config = lab.attack_config();
    let discovery = run_basic(access, &config)?;
    let t = config.school_size_estimate as usize;
    let enhanced = run_enhanced(
        access,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: lab.scenario.home_city },
    )?;
    let truth = lab.ground_truth();
    let point =
        evaluate(t, &enhanced.guessed_students(t), |u| enhanced.inferred_year(u, &config), &truth);
    Ok((point.found, point.correct_year, point.false_positives))
}

fn measure(lab: &Lab, strength: DetectorStrength, mode: &'static str) -> Cell {
    let adaptive = if mode == "adaptive" { Some(AdaptiveStrategy::seeded(SEED)) } else { None };
    let mut access = lab.arms_race_crawler(2, "arms", SEED, adaptive);
    let outcome = attack(lab, access.as_mut());
    let effort = access.effort();
    let snap = lab.obs.snapshot();
    let (eligible, flagged) = lab.platform.defense.frontier_counts(SESSION_FLOOR);
    let (found, correct_year, false_positives) = *outcome.as_ref().unwrap_or(&(0, 0, 0));
    Cell {
        strength,
        mode,
        completed: outcome.is_ok(),
        error: outcome.err().map(|e| e.to_string()),
        found,
        correct_year,
        false_positives,
        sessions_eligible: eligible,
        sessions_flagged: flagged,
        detection_pm: (flagged * 1_000).checked_div(eligible).unwrap_or(0),
        effort,
        suspensions: snap.counter("crawler_account_suspensions_total"),
        recruited: snap.counter("crawler_accounts_recruited_total"),
        virtual_minutes: lab.platform.clock.now_ms() as f64 / 60_000.0,
    }
}

fn sweep_cell(cfg: &ScenarioConfig, strength: DetectorStrength, mode: &'static str) -> Cell {
    let lab = Lab::facebook_defended(cfg, DefenseConfig { strength, ..DefenseConfig::default() });
    measure(&lab, strength, mode)
}

/// The undefended reference attack (no defense subsystem in the
/// config at all) that `DetectorStrength::Off` must reproduce.
fn baseline(cfg: &ScenarioConfig) -> Cell {
    let lab = Lab::facebook(cfg);
    measure(&lab, DetectorStrength::Off, "naive")
}

fn gate_frontier(scenario: &str, baseline: &Cell, cells: &[Cell]) {
    let off_naive = cells
        .iter()
        .find(|c| c.strength == DetectorStrength::Off && c.mode == "naive")
        .expect("off/naive cell");
    assert_eq!(
        (off_naive.found, off_naive.correct_year, off_naive.false_positives),
        (baseline.found, baseline.correct_year, baseline.false_positives),
        "[{scenario}] detector-off must reproduce the baseline Table 4 exactly"
    );
    assert_eq!(
        off_naive.effort, baseline.effort,
        "[{scenario}] detector-off must leave the attack effort ledger unchanged"
    );
    assert_eq!(
        off_naive.virtual_minutes, baseline.virtual_minutes,
        "[{scenario}] detector-off must leave the attack virtual wall-clock unchanged"
    );
    for mode in ["naive", "adaptive"] {
        let rates: Vec<u64> = STRENGTHS
            .iter()
            .map(|&s| {
                cells
                    .iter()
                    .find(|c| c.strength == s && c.mode == mode)
                    .expect("sweep cell")
                    .detection_pm
            })
            .collect();
        assert!(
            rates.windows(2).all(|w| w[0] <= w[1]),
            "[{scenario}] {mode} detection rate must be monotone in strength, got {rates:?}"
        );
    }
    let high_naive = cells
        .iter()
        .find(|c| c.strength == DetectorStrength::High && c.mode == "naive")
        .expect("high/naive cell");
    assert!(
        high_naive.detection_pm >= 500,
        "[{scenario}] strongest tier must detect >=50% of naive sessions, got {}permille",
        high_naive.detection_pm
    );
    let costs: Vec<f64> = STRENGTHS
        .iter()
        .map(|&s| {
            cells
                .iter()
                .find(|c| c.strength == s && c.mode == "naive")
                .expect("sweep cell")
                .virtual_minutes
        })
        .collect();
    assert!(
        costs.windows(2).all(|w| w[0] <= w[1]),
        "[{scenario}] naive attack cost must be monotone in detector strength, got {costs:?}"
    );
}

/// Append the sweep to `<workspace>/BENCH_defense.json` (a JSON array
/// of run objects; created on first use), mirroring `BENCH_chaos.json`.
fn append_headline(scenario: &str, cells: &[Cell]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_defense.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    for cell in cells {
        let mut entry = serde_json::Map::new();
        entry.insert("bench".into(), format!("arms_race_{scenario}").into());
        entry.insert("detector".into(), serde_json::Value::from(cell.strength.label()));
        entry.insert("crawler".into(), serde_json::Value::from(cell.mode));
        entry.insert("completed".into(), serde_json::Value::from(cell.completed));
        if let Some(e) = &cell.error {
            entry.insert("error".into(), serde_json::Value::from(e.as_str()));
        }
        entry.insert("found".into(), serde_json::Value::from(cell.found as u64));
        entry.insert("correct_year".into(), serde_json::Value::from(cell.correct_year as u64));
        entry
            .insert("false_positives".into(), serde_json::Value::from(cell.false_positives as u64));
        entry.insert("sessions_eligible".into(), serde_json::Value::from(cell.sessions_eligible));
        entry.insert("sessions_flagged".into(), serde_json::Value::from(cell.sessions_flagged));
        entry.insert("detection_pm".into(), serde_json::Value::from(cell.detection_pm));
        entry.insert("total_requests".into(), serde_json::Value::from(cell.effort.total()));
        entry.insert("retries".into(), serde_json::Value::from(cell.effort.retry_requests));
        entry.insert(
            "captcha_challenges".into(),
            serde_json::Value::from(cell.effort.captcha_challenges),
        );
        entry.insert(
            "captcha_virtual_ms".into(),
            serde_json::Value::from(cell.effort.captcha_virtual_ms),
        );
        entry.insert("decoy_requests".into(), serde_json::Value::from(cell.effort.decoy_requests));
        entry.insert("suspensions".into(), serde_json::Value::from(cell.suspensions));
        entry.insert("accounts_recruited".into(), serde_json::Value::from(cell.recruited));
        entry.insert("virtual_minutes".into(), serde_json::Value::from(cell.virtual_minutes));
        if let Some(arr) = runs.as_array_mut() {
            arr.push(serde_json::Value::Object(entry));
        }
    }
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[arms-race] appended {} rows to BENCH_defense.json", cells.len());
        }
    }
}

fn main() {
    let scenario = std::env::var("ARMS_SCENARIO").unwrap_or_else(|_| "hs1".to_string());
    let cfg = match scenario.as_str() {
        "hs1" => ScenarioConfig::hs1(),
        "tiny" => ScenarioConfig::tiny(),
        other => panic!("unknown ARMS_SCENARIO {other:?} (use hs1 or tiny)"),
    };
    println!("arms race: {scenario} attack vs sybil-detector strength (seed {SEED:#x})");
    println!(
        "{:>8}  {:>8}  {:>9}  {:>9}  {:>6}  {:>5}  {:>8}  {:>7}  {:>8}  {:>6}  {:>9}  {:>8}",
        "detector",
        "crawler",
        "completed",
        "detected",
        "rate",
        "found",
        "requests",
        "retries",
        "captchas",
        "decoys",
        "suspended",
        "virt-min"
    );
    let base = baseline(&cfg);
    let mut cells = Vec::new();
    for strength in STRENGTHS {
        for mode in ["naive", "adaptive"] {
            let cell = sweep_cell(&cfg, strength, mode);
            println!(
                "{:>8}  {:>8}  {:>9}  {:>9}  {:>5}‰  {:>5}  {:>8}  {:>7}  {:>8}  {:>6}  {:>9}  {:>8.1}",
                cell.strength.label(),
                cell.mode,
                if cell.completed { "yes" } else { "DIED" },
                format!("{}/{}", cell.sessions_flagged, cell.sessions_eligible),
                cell.detection_pm,
                cell.found,
                cell.effort.total(),
                cell.effort.retry_requests,
                cell.effort.captcha_challenges,
                cell.effort.decoy_requests,
                cell.suspensions,
                cell.virtual_minutes
            );
            if let Some(e) = &cell.error {
                println!("          ^ died with: {e}");
            }
            cells.push(cell);
        }
    }
    gate_frontier(&scenario, &base, &cells);
    // Determinism gate: the most eventful cell (full ladder + evasion)
    // must reproduce exactly from the same seed.
    let replay = sweep_cell(&cfg, DetectorStrength::High, "adaptive");
    let first = cells
        .iter()
        .find(|c| c.strength == DetectorStrength::High && c.mode == "adaptive")
        .expect("high/adaptive cell");
    assert_eq!(*first, replay, "[{scenario}] arms-race rows must be deterministic per seed");
    println!("[arms-race] gates passed: off==baseline, monotone frontier, high/naive >=500permille, deterministic replay");
    append_headline(&scenario, &cells);
}
