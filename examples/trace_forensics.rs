//! End-to-end tracing + forensics pipeline: run the full attack with
//! the flight recorder on, audit the trace against the effort ledger,
//! and measure what recording costs. Appends overhead rows to
//! `BENCH_obs.json` at the workspace root and writes the forensics
//! artifacts under `results/`:
//!
//!   - `results/trace_<digest>.json`        — the closed TraceAudit
//!   - `results/trace_<digest>.chrome.json` — Chrome trace-event file
//!     (open at <https://ui.perfetto.dev> or `chrome://tracing`)
//!
//! ```sh
//! cargo run --release --example trace_forensics            # HS1, overhead gate
//! cargo run --release --example trace_forensics -- --smoke # tiny world, CI gate
//! ```
//!
//! Overhead is gated on *virtual* attack time: span recording never
//! advances any virtual clock, so the traced and untraced runs must
//! model the identical makespan (0% — comfortably under the ≤5%
//! budget). Wall-clock overhead is reported but not gated; on a shared
//! box it measures the neighbours, not the recorder.

use hs_profiler::experiments::runner::{full_attack_with, AttackRun, Lab};
use hs_profiler::experiments::trace_audit::audit_trace;
use hs_profiler::platform::FaultPlan;
use hs_profiler::synth::ScenarioConfig;
use std::time::Instant;

const SEED: u64 = 0x9d5f_2013;
const ACCOUNTS: usize = 4;
const WORKERS: usize = 4;
/// Per-lane ring capacity: one lane per account, sized so even the HS1
/// attack drops nothing (a lossy ring would void the audit).
const TRACE_CAP: usize = 1 << 16;

struct Run {
    lab: Lab,
    run: AttackRun,
    wall_secs: f64,
}

fn attack(cfg: &ScenarioConfig, traced: bool) -> Run {
    let lab = Lab::facebook_chaotic(cfg, FaultPlan::chaos());
    if traced {
        lab.obs.enable_tracing(TRACE_CAP);
    }
    let access = Box::new(lab.parallel_crawler(ACCOUNTS, WORKERS, "atk", SEED));
    let started = Instant::now();
    let run = full_attack_with(&lab, access);
    Run { lab, run, wall_secs: started.elapsed().as_secs_f64() }
}

/// Audit the traced run, write both forensics artifacts, and return
/// `(digest, spans, audit_path)`.
fn forensics(traced: &Run) -> (String, u64, String) {
    let tracer = traced.lab.obs.tracer();
    assert_eq!(tracer.dropped(), 0, "ring overflowed; raise TRACE_CAP");
    let audit = audit_trace(&traced.lab.obs, &traced.run.effort_total);
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
    let digest = audit.digest.clone();
    let spans = audit.spans;
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/results");
    let _ = std::fs::create_dir_all(dir);
    let audit_path = audit.write_report(dir).expect("write audit report");
    let chrome_path = format!("{dir}/trace_{digest}.chrome.json");
    std::fs::write(&chrome_path, tracer.export_chrome_trace()).expect("write chrome trace");
    println!("forensics audit : {audit_path}");
    println!("chrome trace    : {chrome_path} (open at https://ui.perfetto.dev)");
    (digest, spans, audit_path)
}

fn append_headline(
    school: &str,
    digest: &str,
    spans: u64,
    virt_ms: u64,
    overhead_virtual_pct: f64,
    wall_untraced: f64,
    wall_traced: f64,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_obs.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    let Some(arr) = runs.as_array_mut() else { return };
    arr.push(serde_json::json!({
        "bench": "trace_overhead",
        "school": school,
        "accounts": ACCOUNTS as u64,
        "workers": WORKERS as u64,
        "spans": spans,
        "trace_digest": digest,
        "virtual_attack_ms": virt_ms,
        "overhead_virtual_pct": overhead_virtual_pct,
        "wall_secs_untraced": wall_untraced,
        "wall_secs_traced": wall_traced,
    }));
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[trace_forensics] appended 1 row to BENCH_obs.json");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (school, cfg) =
        if smoke { ("TINY", ScenarioConfig::tiny()) } else { ("HS1", ScenarioConfig::hs1()) };
    println!("trace forensics on {school} (seed {SEED:#x}, chaotic faults, {ACCOUNTS} accounts)");

    let untraced = attack(&cfg, false);
    let traced = attack(&cfg, true);

    // Same attack either way: the recorder observes, it never steers.
    assert_eq!(untraced.run.effort_total, traced.run.effort_total, "tracing changed the attack");
    let virt_off = untraced.run.access.virtual_elapsed_ms();
    let virt_on = traced.run.access.virtual_elapsed_ms();
    let overhead_virtual_pct = (virt_on as f64 - virt_off as f64) / virt_off.max(1) as f64 * 100.0;

    let (digest, spans, _) = forensics(&traced);
    println!(
        "{spans} spans, digest {digest}; virtual attack {virt_on} ms traced vs {virt_off} ms \
         untraced ({overhead_virtual_pct:+.2}%)"
    );
    println!(
        "wall: {:.2}s untraced, {:.2}s traced ({:+.1}%)",
        untraced.wall_secs,
        traced.wall_secs,
        (traced.wall_secs - untraced.wall_secs) / untraced.wall_secs.max(1e-9) * 100.0
    );
    assert!(
        overhead_virtual_pct <= 5.0,
        "tracing overhead {overhead_virtual_pct:.2}% exceeds the 5% budget"
    );

    if smoke {
        // Digest stability: an identical run leaves an identical trace.
        let replay = attack(&cfg, true);
        assert_eq!(
            replay.lab.obs.tracer().digest(),
            traced.lab.obs.tracer().digest(),
            "trace digest must be reproducible"
        );
        println!("smoke: digest reproducible, audit closed, overhead gate PASS");
    } else {
        append_headline(
            school,
            &digest,
            spans,
            virt_on,
            overhead_virtual_pct,
            untraced.wall_secs,
            traced.wall_secs,
        );
        println!("overhead gate (≤5% virtual attack time): PASS");
    }
}
