//! Seed-replayable soak harness: the full HS1 attack under *combined*
//! hostility — server-side overload (bounded admission, token-bucket
//! edge, slowloris deadlines), handler-level `FaultPlan::chaos()`
//! faults, and a deterministic `ChaosTransport` mangling the crawler's
//! wire — swept across seeds, with a hard audit after every seed:
//!
//! * the attack completes and Table 4 is **identical** to a fault-free
//!   baseline run (chaos may change what the attack *costs*, never what
//!   it *finds*);
//! * zero panics anywhere in the process (a panic hook counts them);
//! * zero double-sent POSTs: every POST the transport redelivered must
//!   be matched by an intentional application-level auth retry;
//! * the request ledger closes at every layer: Effort buckets ≡ the
//!   crawler's observability counters, crawler attempts ≡ chaos
//!   delivered + aborted-before, the server's request count ≡ the
//!   platform's route audit + edge rate-limits, and the platform's
//!   served-request audit reconciles with `delivered − refused` (small
//!   documented slack for TCP close races);
//! * the overloaded server sheds with fast `503 + Retry-After` while
//!   p99 latency for *admitted* requests stays bounded;
//! * graceful drain finishes within its deadline and new connections
//!   are refused, not reset;
//! * memory stays bounded across the sweep (VmRSS growth is checked).
//!
//! On any violation the failing seed is printed and the process exits
//! non-zero. Headline stats append to `BENCH_soak.json`.
//!
//! ```sh
//! scripts/soak.sh                      # full sweep (8 seeds, HS1)
//! SOAK_SEEDS=2 SOAK_SCENARIO=tiny \
//!   cargo run --release --example soak # smoke mode (check.sh)
//! ```
//!
//! Determinism note: the `ChaosTransport` fault stream is bit-replayable
//! from its seed (proven by unit tests and the `chaos_attack`
//! integration test over the in-process exchange). Over real TCP the
//! *placement* of faults additionally depends on wall-clock-driven shed
//! responses, so the soak asserts invariants of *outcome* — findings,
//! ledgers, safety — rather than byte-identical telemetry.

use hs_profiler::core::{evaluate, run_basic, run_enhanced, EnhanceOptions, EvalPoint};
use hs_profiler::crawler::OsnAccess;
use hs_profiler::experiments::runner::{full_attack, Lab};
use hs_profiler::http::{
    is_edge_limited, is_shed, ChaosPlan, Client, Exchange, RateLimit, Request, ServerConfig,
};
use hs_profiler::platform::FaultPlan;
use hs_profiler::synth::ScenarioConfig;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BASE_SEED: u64 = 0x50AC_2013;

/// Ledger slack for inherently racy TCP edges (a shed 503 whose close
/// beats the client's read, an idle reap racing a request): each such
/// event can make the platform serve one fewer request than
/// `delivered − refused` predicts. Losses only — the gap is one-sided.
const LEDGER_SLACK: u64 = 8;

/// Client-observed p99 bound for requests the server *admitted* while
/// it was actively shedding load.
const ADMITTED_P99_BOUND_MS: u64 = 1_500;

/// VmRSS growth allowed across the whole sweep.
const RSS_GROWTH_BOUND_MB: u64 = 512;

fn hardened_config() -> ServerConfig {
    ServerConfig {
        workers: 6,
        queue_depth: 2,
        max_connections: 32,
        // Safety-valve sizing: never throttles the legitimate attack
        // rate, still caps a runaway flood.
        rate_limit: Some(RateLimit { burst: 2_000, per_sec: 10_000.0 }),
        read_timeout: Duration::from_secs(5),
        request_deadline: Duration::from_secs(10),
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// Outcome classification for one background request.
#[derive(Default)]
struct LoadTally {
    sent: u64,
    /// Served by a platform handler (any status without `Retry-After`).
    handled: u64,
    shed: u64,
    rate_limited: u64,
    /// Transport-level failures (e.g. the shed-close RST race).
    resets: u64,
    latencies_us: Vec<u64>,
}

impl LoadTally {
    fn absorb(&mut self, other: LoadTally) {
        self.sent += other.sent;
        self.handled += other.handled;
        self.shed += other.shed;
        self.rate_limited += other.rate_limited;
        self.resets += other.resets;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// One connection-per-request GET, tallied by outcome.
fn one_shot(addr: std::net::SocketAddr, tally: &mut LoadTally) {
    let mut client = Client::new(addr);
    let started = Instant::now();
    tally.sent += 1;
    match client.exchange(Request::get("/profile/1")) {
        Ok(resp) => {
            // Edge refusals (shed 503, edge-limiter 429) never reached a
            // handler; everything else — including fault-injected 429s
            // and 5xxs — was served by the platform and is route-counted.
            if is_shed(&resp) {
                tally.shed += 1;
            } else if is_edge_limited(&resp) {
                tally.rate_limited += 1;
            } else {
                tally.handled += 1;
                tally.latencies_us.push(started.elapsed().as_micros() as u64);
            }
        }
        Err(_) => tally.resets += 1,
    }
}

/// Overload blast: `threads` clients hammering one-shot connections as
/// fast as they can. Peak concurrency exceeds workers + queue depth, so
/// the bounded admission path *must* shed.
fn blast(addr: std::net::SocketAddr, threads: usize, requests_each: u64) -> LoadTally {
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let mut tally = LoadTally::default();
                for _ in 0..requests_each {
                    one_shot(addr, &mut tally);
                }
                tally
            })
        })
        .collect();
    let mut total = LoadTally::default();
    for h in handles {
        total.absorb(h.join().expect("blast thread"));
    }
    total
}

/// Paced background load running until `stop` flips: keeps the server
/// contended (and occasionally shedding) for the whole attack phase.
fn background_load(
    addr: std::net::SocketAddr,
    threads: usize,
    stop: Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<LoadTally>> {
    (0..threads)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = LoadTally::default();
                while !stop.load(Ordering::Relaxed) {
                    one_shot(addr, &mut tally);
                    std::thread::sleep(Duration::from_millis(2));
                }
                tally
            })
        })
        .collect()
}

fn percentile_us(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

fn vm_rss_mb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb / 1024)
        .unwrap_or(0)
}

struct Baseline {
    table4: EvalPoint,
    guessed: Vec<hs_profiler::graph::UserId>,
}

/// Fault-free reference run (in-process, no chaos): what the attack
/// *should* find, regardless of how hostile the soak gets.
fn baseline(cfg: &ScenarioConfig) -> Baseline {
    let mut lab = Lab::facebook(cfg);
    let run = full_attack(&mut lab, false);
    let truth = lab.ground_truth();
    let t = run.config.school_size_estimate as usize;
    let guessed = run.enhanced.guessed_students(t);
    let table4 = evaluate(t, &guessed, |u| run.enhanced.inferred_year(u, &run.config), &truth);
    Baseline { table4, guessed }
}

struct SeedReport {
    seed: u64,
    completed: bool,
    error: Option<String>,
    table4: EvalPoint,
    total_requests: u64,
    retries: u64,
    sheds_crawler: u64,
    shed_server: u64,
    rate_limited_server: u64,
    chaos_faults: u64,
    chaos_delivered: u64,
    chaos_aborted_before: u64,
    post_redeliveries: u64,
    auth_retries: u64,
    ledger_gap: u64,
    widen_factor: u64,
    blast_p99_ms: f64,
    attack_bg_p99_ms: f64,
    drain_wall_ms: u64,
    drained_connections: u64,
    drain_rejects: u64,
    rss_mb: u64,
    violations: Vec<String>,
}

#[allow(clippy::too_many_lines)]
fn soak_seed(cfg: &ScenarioConfig, seed: u64, base: &Baseline, smoke: bool) -> SeedReport {
    let mut violations = Vec::new();
    let mut violate = |msg: String| violations.push(msg);

    let mut lab = Lab::facebook_chaotic(cfg, FaultPlan::chaos());
    let addr = lab.serve_hardened(hardened_config()).expect("bind soak server");

    // ---- phase 1: overload blast -------------------------------------
    // 12 concurrent one-shot clients against 6 workers + queue of 2:
    // bounded admission must shed, and what it admits must stay fast.
    let (threads, each) = if smoke { (10, 50) } else { (12, 150) };
    let mut blast_tally = blast(addr, threads, each);
    let blast_p99_us = percentile_us(&mut blast_tally.latencies_us, 0.99);
    if blast_tally.shed == 0 {
        violate(format!(
            "seed {seed}: overload blast produced no shed 503s \
             ({} sent, {} handled, {} rate-limited)",
            blast_tally.sent, blast_tally.handled, blast_tally.rate_limited
        ));
    }
    if blast_p99_us / 1_000 > ADMITTED_P99_BOUND_MS {
        violate(format!(
            "seed {seed}: blast-phase admitted p99 {}ms exceeds {}ms",
            blast_p99_us / 1_000,
            ADMITTED_P99_BOUND_MS
        ));
    }

    // ---- phase 2: the attack under combined hostility ----------------
    let stop = Arc::new(AtomicBool::new(false));
    let bg_threads = background_load(addr, 2, Arc::clone(&stop));

    let plan = ChaosPlan::chaos().with_seed(seed ^ 0xC4A0_2013);
    let (mut crawler, chaos, retry_stats) = lab.tcp_chaos_crawler(2, "soak", seed, &plan);
    let config = lab.attack_config();
    let t = config.school_size_estimate as usize;
    let outcome = (|| {
        let discovery = run_basic(&mut crawler, &config)?;
        let enhanced = run_enhanced(
            &mut crawler,
            &discovery,
            &EnhanceOptions {
                t,
                filtering: true,
                enhance: true,
                school_city: lab.scenario.home_city,
            },
        )?;
        Ok::<_, hs_profiler::crawler::CrawlError>(enhanced)
    })();

    stop.store(true, Ordering::Relaxed);
    let mut attack_bg = LoadTally::default();
    for h in bg_threads {
        attack_bg.absorb(h.join().expect("background load thread"));
    }
    let attack_bg_p99_us = percentile_us(&mut attack_bg.latencies_us, 0.99);
    if attack_bg_p99_us / 1_000 > ADMITTED_P99_BOUND_MS {
        violate(format!(
            "seed {seed}: attack-phase admitted p99 {}ms exceeds {}ms",
            attack_bg_p99_us / 1_000,
            ADMITTED_P99_BOUND_MS
        ));
    }

    // ---- phase 3: audits ---------------------------------------------
    let truth = lab.ground_truth();
    let (completed, error, table4) = match &outcome {
        Ok(enhanced) => {
            let guessed = enhanced.guessed_students(t);
            let table4 = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
            if guessed != base.guessed || table4 != base.table4 {
                violate(format!(
                    "seed {seed}: Table 4 diverged from the fault-free run \
                     (found {} vs {}, correct-year {} vs {})",
                    table4.found, base.table4.found, table4.correct_year, base.table4.correct_year
                ));
            }
            (true, None, table4)
        }
        Err(e) => {
            violate(format!("seed {seed}: attack died: {e}"));
            let empty = EvalPoint { t, guessed: 0, found: 0, correct_year: 0, false_positives: 0 };
            (false, Some(e.to_string()), empty)
        }
    };

    let snap = lab.obs.snapshot();
    let effort = crawler.effort();

    // Effort buckets ≡ the crawler's own observability counters.
    let fetch = |e: &str| snap.counter(&format!("crawler_fetch_total{{endpoint=\"{e}\"}}"));
    let pairs = [
        ("auth", effort.auth_requests),
        ("find-friends", effort.seed_requests),
        ("profile", effort.profile_requests),
        ("message", effort.message_requests),
        ("retry", effort.retry_requests),
    ];
    for (endpoint, bucket) in pairs {
        if fetch(endpoint) != bucket {
            violate(format!(
                "seed {seed}: Effort/metrics mismatch for {endpoint}: {bucket} vs {}",
                fetch(endpoint)
            ));
        }
    }
    if fetch("friends") + fetch("circles") != effort.friend_list_requests {
        violate(format!("seed {seed}: Effort/metrics mismatch for friend lists"));
    }

    // Crawler attempts ≡ chaos ledger.
    let attempts = effort.total() + effort.auth_requests + effort.message_requests;
    if attempts != chaos.delivered() + chaos.aborted_before() {
        violate(format!(
            "seed {seed}: attempts ledger broken: {attempts} attempts vs {} delivered + {} aborted",
            chaos.delivered(),
            chaos.aborted_before()
        ));
    }

    // Server-side closure: every answered request is either a platform
    // route hit or an edge rate-limit; nothing vanishes.
    let route_total: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("http_route_requests_total{"))
        .map(|(_, v)| v)
        .sum();
    let server_requests = snap.counter("http_server_requests_total");
    let server_rate_limited = snap.counter("http_server_rate_limited_total");
    if server_requests != route_total + server_rate_limited {
        violate(format!(
            "seed {seed}: server ledger broken: {server_requests} answered vs \
             {route_total} routed + {server_rate_limited} rate-limited"
        ));
    }
    if snap.counter("http_server_decode_errors_total") != 0 {
        violate(format!("seed {seed}: server saw decode errors from well-formed clients"));
    }

    // The money audit: platform served-request count ≡ what the chaos
    // transport says it delivered minus what the edge refused. The
    // background load accounts for itself; the remainder is the crawler.
    let bg_handled = blast_tally.handled + attack_bg.handled;
    let crawler_handled = route_total.saturating_sub(bg_handled);
    let expected = chaos.delivered().saturating_sub(chaos.refused());
    let ledger_gap = expected.saturating_sub(crawler_handled);
    if crawler_handled > expected || ledger_gap > LEDGER_SLACK {
        violate(format!(
            "seed {seed}: platform audit broken: {crawler_handled} served vs \
             {} delivered − {} refused (gap {ledger_gap}, slack {LEDGER_SLACK})",
            chaos.delivered(),
            chaos.refused()
        ));
    }

    // Zero double-sent POSTs: every redelivered POST fingerprint must be
    // an intentional application-level auth retry.
    if chaos.post_redeliveries() > crawler.auth_retries() {
        violate(format!(
            "seed {seed}: {} POST redeliveries exceed {} intentional auth retries — \
             a transport layer silently replayed a POST",
            chaos.post_redeliveries(),
            crawler.auth_retries()
        ));
    }

    let shed_server = snap.counter("http_server_shed_total{reason=\"queue_full\"}")
        + snap.counter("http_server_shed_total{reason=\"max_connections\"}");

    // ---- phase 4: graceful drain -------------------------------------
    let drain_started = Instant::now();
    lab.server().expect("server running").begin_drain();
    // A newcomer during drain is refused politely (503 or a clean
    // close), never left hanging.
    let mut probe = Client::new(addr);
    match probe.exchange(Request::get("/profile/1")) {
        Ok(resp) if resp.status.code() == 503 => {}
        Ok(resp) => {
            violate(format!("seed {seed}: drain admitted new work (status {})", resp.status.code()))
        }
        Err(_) => {} // listener already closed: refused, not hung
    }
    lab.stop_serving();
    let drain_wall_ms = drain_started.elapsed().as_millis() as u64;
    let drain_budget = hardened_config().drain_deadline + Duration::from_secs(3);
    if drain_wall_ms > drain_budget.as_millis() as u64 {
        violate(format!(
            "seed {seed}: drain took {drain_wall_ms}ms (budget {}ms)",
            drain_budget.as_millis()
        ));
    }
    let final_snap = lab.obs.snapshot();

    SeedReport {
        seed,
        completed,
        error,
        table4,
        total_requests: effort.total(),
        retries: effort.retry_requests,
        sheds_crawler: retry_stats.sheds(),
        shed_server,
        rate_limited_server: server_rate_limited,
        chaos_faults: chaos.total_faults(),
        chaos_delivered: chaos.delivered(),
        chaos_aborted_before: chaos.aborted_before(),
        post_redeliveries: chaos.post_redeliveries(),
        auth_retries: crawler.auth_retries(),
        ledger_gap,
        widen_factor: crawler.politeness_widen_factor(),
        blast_p99_ms: blast_p99_us as f64 / 1_000.0,
        attack_bg_p99_ms: attack_bg_p99_us as f64 / 1_000.0,
        drain_wall_ms,
        drained_connections: final_snap.counter("http_server_drained_total"),
        drain_rejects: final_snap.counter("http_server_shutdown_rejects_total"),
        rss_mb: vm_rss_mb(),
        violations,
    }
}

/// Append one row per seed to `<workspace>/BENCH_soak.json`, mirroring
/// the other BENCH files (a JSON array of run objects).
fn append_bench(rows: &[SeedReport], scenario: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_soak.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    for row in rows {
        let entry = serde_json::json!({
            "bench": "soak",
            "scenario": scenario,
            "seed": row.seed,
            "completed": row.completed,
            "error": row.error,
            "found": row.table4.found as u64,
            "correct_year": row.table4.correct_year as u64,
            "total_requests": row.total_requests,
            "retries": row.retries,
            "sheds_absorbed_by_crawler": row.sheds_crawler,
            "server_sheds": row.shed_server,
            "server_rate_limited": row.rate_limited_server,
            "chaos_faults": row.chaos_faults,
            "chaos_delivered": row.chaos_delivered,
            "chaos_aborted_before": row.chaos_aborted_before,
            "post_redeliveries": row.post_redeliveries,
            "auth_retries": row.auth_retries,
            "ledger_gap": row.ledger_gap,
            "politeness_widen_factor": row.widen_factor,
            "blast_p99_ms": row.blast_p99_ms,
            "attack_bg_p99_ms": row.attack_bg_p99_ms,
            "drain_wall_ms": row.drain_wall_ms,
            "drained_connections": row.drained_connections,
            "drain_rejects": row.drain_rejects,
            "rss_mb": row.rss_mb,
            "violations": row.violations.len() as u64,
        });
        if let Some(arr) = runs.as_array_mut() {
            arr.push(entry);
        }
    }
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[soak] appended {} rows to BENCH_soak.json", rows.len());
        }
    }
}

fn main() {
    let panics = Arc::new(AtomicU64::new(0));
    {
        let panics = Arc::clone(&panics);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            panics.fetch_add(1, Ordering::SeqCst);
            previous(info);
        }));
    }

    let seeds: u64 = std::env::var("SOAK_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    let scenario = std::env::var("SOAK_SCENARIO").unwrap_or_else(|_| "hs1".to_string());
    let (cfg, smoke) = match scenario.as_str() {
        "tiny" => (ScenarioConfig::tiny(), true),
        _ => (ScenarioConfig::hs1(), false),
    };

    println!("soak: {scenario} attack, {seeds} seeds, overload + faults + transport chaos");
    let rss_start = vm_rss_mb();
    let base = baseline(&cfg);
    println!(
        "baseline (fault-free): found {} / correct-year {} of {} guessed",
        base.table4.found, base.table4.correct_year, base.table4.guessed
    );

    println!(
        "{:>6}  {:>4}  {:>5}  {:>8}  {:>7}  {:>6}  {:>6}  {:>6}  {:>5}  {:>8}  {:>7}",
        "seed",
        "ok",
        "found",
        "requests",
        "retries",
        "sheds",
        "chaos",
        "redlvr",
        "gap",
        "p99(ms)",
        "drain",
    );
    let mut rows: Vec<SeedReport> = Vec::new();
    let mut all_violations: Vec<String> = Vec::new();
    for i in 0..seeds {
        let seed = BASE_SEED.wrapping_add(i.wrapping_mul(0x9e37_79b9));
        let report =
            std::panic::catch_unwind(AssertUnwindSafe(|| soak_seed(&cfg, seed, &base, smoke)));
        match report {
            Ok(row) => {
                println!(
                    "{:>6x}  {:>4}  {:>5}  {:>8}  {:>7}  {:>6}  {:>6}  {:>6}  {:>5}  {:>8.1}  {:>6}ms",
                    row.seed & 0xff_ffff,
                    if row.completed { "yes" } else { "DIED" },
                    row.table4.found,
                    row.total_requests,
                    row.retries,
                    row.shed_server,
                    row.chaos_faults,
                    row.post_redeliveries,
                    row.ledger_gap,
                    row.attack_bg_p99_ms,
                    row.drain_wall_ms,
                );
                all_violations.extend(row.violations.iter().cloned());
                rows.push(row);
            }
            Err(_) => {
                all_violations.push(format!("seed {seed:#x}: soak panicked"));
            }
        }
    }

    let rss_end = vm_rss_mb();
    if rss_end.saturating_sub(rss_start) > RSS_GROWTH_BOUND_MB {
        all_violations.push(format!(
            "memory growth {}MB exceeds {}MB bound",
            rss_end.saturating_sub(rss_start),
            RSS_GROWTH_BOUND_MB
        ));
    }
    let panic_count = panics.load(Ordering::SeqCst);
    if panic_count > 0 {
        all_violations.push(format!("{panic_count} panic(s) observed during the soak"));
    }
    let total_sheds: u64 = rows.iter().map(|r| r.shed_server).sum();
    if !rows.is_empty() && total_sheds == 0 {
        all_violations.push("no server-side sheds across the whole sweep".to_string());
    }

    append_bench(&rows, &scenario);
    println!(
        "sweep: {} seeds, {} server sheds, {} chaos faults, rss {}MB -> {}MB",
        rows.len(),
        total_sheds,
        rows.iter().map(|r| r.chaos_faults).sum::<u64>(),
        rss_start,
        rss_end,
    );

    if !all_violations.is_empty() {
        eprintln!("SOAK VIOLATIONS:");
        for v in &all_violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("soak clean: every seed survived with identical findings and closed ledgers.");
}
