//! Parallel-pipeline scaling benchmark: the full attack at 1/2/4/8
//! crawl workers and the sharded population build at 1/2/4/8 threads,
//! with the determinism contract checked at every point. Appends rows
//! to `BENCH_crawl.json` at the workspace root.
//!
//! ```sh
//! cargo run --release --example crawl_bench            # HS1, asserts ≥3× at 8 workers
//! cargo run --release --example crawl_bench -- --smoke # tiny world, CI gate
//! ```
//!
//! Crawl throughput is reported against the *modeled virtual makespan*
//! (`ParallelCrawler::virtual_elapsed_ms`): per-batch greedy makespans
//! over per-account politeness/backoff timelines. That is the honest
//! number on a single-CPU container — real wall-clock there measures
//! the box, not the scheduler — and it is bit-reproducible, so the
//! speedup claim is too.

use hs_profiler::experiments::runner::{full_attack_with, Lab};
use hs_profiler::synth::{generate_sharded, ScenarioConfig};
use std::time::Instant;

const SEED: u64 = 0x9d5f_2013;
/// Fixed account pool: worker counts sweep lanes over the same seats so
/// every point replays the identical request stream.
const ACCOUNTS: usize = 8;
const POINTS: [usize; 4] = [1, 2, 4, 8];

struct CrawlRow {
    workers: usize,
    pages: u64,
    real_secs: f64,
    virtual_secs: f64,
    pages_per_virtual_sec: f64,
    /// Determinism witnesses: must match across all rows.
    seeds: Vec<hs_profiler::graph::UserId>,
    effort: hs_profiler::crawler::Effort,
}

struct SynthRow {
    threads: usize,
    users: usize,
    real_secs: f64,
    users_per_sec: f64,
    fingerprint: u64,
}

fn crawl_point(cfg: &ScenarioConfig, workers: usize) -> CrawlRow {
    let lab = Lab::facebook(cfg);
    let access = Box::new(lab.parallel_crawler(ACCOUNTS, workers, "atk", SEED));
    let started = Instant::now();
    let run = full_attack_with(&lab, access);
    let real_secs = started.elapsed().as_secs_f64();
    let virtual_secs = run.access.virtual_elapsed_ms() as f64 / 1000.0;
    let pages = run.effort_total.total();
    CrawlRow {
        workers,
        pages,
        real_secs,
        virtual_secs,
        pages_per_virtual_sec: pages as f64 / virtual_secs.max(1e-9),
        seeds: run.discovery.seeds.clone(),
        effort: run.effort_total,
    }
}

fn synth_point(cfg: &ScenarioConfig, threads: usize) -> SynthRow {
    let started = Instant::now();
    let scenario = generate_sharded(cfg, threads);
    let real_secs = started.elapsed().as_secs_f64();
    let users = scenario.network.user_count();
    SynthRow {
        threads,
        users,
        real_secs,
        users_per_sec: users as f64 / real_secs.max(1e-9),
        fingerprint: scenario.network.fingerprint(),
    }
}

/// Append the run to `<workspace>/BENCH_crawl.json` (a JSON array of
/// row objects; created on first use), mirroring `BENCH_chaos.json`.
fn append_headline(school: &str, crawl: &[CrawlRow], synth: &[SynthRow], speedup: f64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_crawl.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    let Some(arr) = runs.as_array_mut() else { return };
    for row in crawl {
        arr.push(serde_json::json!({
            "bench": "crawl_attack",
            "school": school,
            "workers": row.workers as u64,
            "accounts": ACCOUNTS as u64,
            "pages": row.pages,
            "real_secs": row.real_secs,
            "virtual_secs": row.virtual_secs,
            "pages_per_virtual_sec": row.pages_per_virtual_sec,
        }));
    }
    for row in synth {
        arr.push(serde_json::json!({
            "bench": "synth_build",
            "school": school,
            "threads": row.threads as u64,
            "users": row.users as u64,
            "real_secs": row.real_secs,
            "users_per_sec": row.users_per_sec,
            "fingerprint": format!("{:#018x}", row.fingerprint),
        }));
    }
    arr.push(serde_json::json!({
        "bench": "crawl_speedup",
        "school": school,
        "workers": 8u64,
        "modeled_speedup": speedup,
    }));
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!(
                "[crawl_bench] appended {} rows to BENCH_crawl.json",
                crawl.len() + synth.len() + 1
            );
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (school, cfg) =
        if smoke { ("TINY", ScenarioConfig::tiny()) } else { ("HS1", ScenarioConfig::hs1()) };
    println!("crawl/synth scaling on {school} (seed {SEED:#x}, {ACCOUNTS} accounts)");

    println!(
        "{:>7}  {:>7}  {:>9}  {:>9}  {:>12}",
        "workers", "pages", "real-s", "virt-s", "pages/virt-s"
    );
    let crawl: Vec<CrawlRow> = POINTS.iter().map(|&w| crawl_point(&cfg, w)).collect();
    for row in &crawl {
        println!(
            "{:>7}  {:>7}  {:>9.2}  {:>9.1}  {:>12.1}",
            row.workers, row.pages, row.real_secs, row.virtual_secs, row.pages_per_virtual_sec
        );
    }
    // Determinism: every worker count replayed the identical attack.
    for row in &crawl[1..] {
        assert_eq!(row.seeds, crawl[0].seeds, "seeds diverged at workers={}", row.workers);
        assert_eq!(row.effort, crawl[0].effort, "effort diverged at workers={}", row.workers);
    }
    let speedup = crawl[0].virtual_secs / crawl[POINTS.len() - 1].virtual_secs.max(1e-9);
    println!("modeled attack speedup at 8 workers: {speedup:.2}x");

    println!("{:>7}  {:>7}  {:>9}  {:>12}", "threads", "users", "real-s", "users/s");
    let synth: Vec<SynthRow> = POINTS.iter().map(|&t| synth_point(&cfg, t)).collect();
    for row in &synth {
        println!(
            "{:>7}  {:>7}  {:>9.3}  {:>12.0}",
            row.threads, row.users, row.real_secs, row.users_per_sec
        );
    }
    for row in &synth[1..] {
        assert_eq!(
            row.fingerprint, synth[0].fingerprint,
            "sharded build diverged at threads={}",
            row.threads
        );
    }
    println!("synth fingerprint identical at all thread counts: {:#018x}", synth[0].fingerprint);

    append_headline(school, &crawl, &synth, speedup);

    if !smoke {
        assert!(speedup >= 3.0, "expected ≥3x modeled speedup at 8 workers, got {speedup:.2}x");
        println!("speedup gate (≥3x at 8 workers): PASS");
    }
}
