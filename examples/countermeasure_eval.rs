//! Countermeasure evaluation (paper §8): how much does disabling
//! reverse lookup — hiding users with private friend lists from *other*
//! users' friend lists — cripple the profiling attack?
//!
//! The paper reports the top-500 coverage of HS1 dropping from 92 % to
//! 33 %. This example runs the identical attack against the identical
//! world twice, flipping only the policy switch.
//!
//! ```sh
//! cargo run --release --example countermeasure_eval [-- --full]
//! ```

use hs_profiler::core::{evaluate, GroundTruth};
use hs_profiler::experiments::{full_attack, Lab};
use hs_profiler::policy::FacebookPolicy;
use hs_profiler::synth::{generate, ScenarioConfig};
use std::sync::Arc;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full { ScenarioConfig::hs1() } else { ScenarioConfig::tiny() };
    let scenario = generate(&cfg);
    let truth = GroundTruth::from_scenario(&scenario);
    println!("world: {}", scenario.summary());

    let mut results = Vec::new();
    for (label, policy) in [
        ("reverse lookup ENABLED (status quo)", FacebookPolicy::new()),
        ("reverse lookup DISABLED (countermeasure)", FacebookPolicy::without_reverse_lookup()),
    ] {
        let mut lab = Lab::from_scenario(scenario.clone(), Arc::new(policy));
        let run = full_attack(&mut lab, false);
        let t = run.config.school_size_estimate as usize;
        let guessed = run.enhanced.guessed_students(t);
        let point = evaluate(t, &guessed, |u| run.enhanced.inferred_year(u, &run.config), &truth);
        println!(
            "{label}:\n  core {} users, candidates {}, found {}/{} ({:.0}%), {} false positives",
            run.enhanced.extended_core.len(),
            run.discovery.candidate_count(),
            point.found,
            truth.len(),
            point.pct_found(truth.len()),
            point.false_positives
        );
        results.push(point.pct_found(truth.len()));
    }
    println!(
        "\ncoverage drop from the countermeasure: {:.0}% -> {:.0}% \
         (paper: 92% -> 33% at HS1, top-500)",
        results[0], results[1]
    );
    println!(
        "registered minors become invisible because their hidden friend lists no longer \
         leak through classmates' public lists — the exact §8 mechanism."
    );
}
