//! Quickstart: generate a small synthetic OSN world, run the paper's
//! high-school profiling attack against it in-process, and score the
//! result against ground truth.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hs_profiler::core::{
    evaluate, run_basic, run_enhanced, AttackConfig, EnhanceOptions, GroundTruth,
};
use hs_profiler::crawler::{Crawler, OsnAccess};
use hs_profiler::http::DirectExchange;
use hs_profiler::platform::{Platform, PlatformConfig};
use hs_profiler::policy::FacebookPolicy;
use hs_profiler::synth::{generate, ScenarioConfig};
use std::sync::Arc;

fn main() {
    // 1. Generate a synthetic world: a 128-student high school, its
    //    alumni, churned transfers, parents and a community pool —
    //    with the paper's age-lying model deciding who is a "minor
    //    registered as an adult".
    let scenario = generate(&ScenarioConfig::tiny());
    println!("world: {}", scenario.summary());

    // 2. Mount it on the simulated OSN behind Facebook's minor-privacy
    //    policy (registered minors are capped to minimal profiles and
    //    excluded from search).
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler = platform.into_handler();

    // 3. The attacker: two fake accounts, crawling only stranger-visible
    //    pages.
    let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
    let mut crawler = Crawler::new(exchanges, "quickstart").expect("crawler");
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );

    // 4. Run the basic methodology (§4.1) ...
    let discovery = run_basic(&mut crawler, &config).expect("basic methodology");
    println!(
        "basic: {} seeds -> {} claiming -> {} core users -> {} candidates",
        discovery.seeds.len(),
        discovery.claiming.len(),
        discovery.core.len(),
        discovery.candidate_count()
    );

    // 5. ... then the enhanced pass with the §4.4 filters.
    let t = config.school_size_estimate as usize;
    let enhanced = run_enhanced(
        &mut crawler,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: scenario.home_city },
    )
    .expect("enhanced methodology");
    println!(
        "enhanced: extended core {} users; crawl effort: {}",
        enhanced.extended_core.len(),
        crawler.effort()
    );

    // 6. Score against the generator's ground truth (standing in for the
    //    paper's confidential roster).
    let truth = GroundTruth::from_scenario(&scenario);
    let guessed = enhanced.guessed_students(t);
    let point = evaluate(t, &guessed, |u| enhanced.inferred_year(u, &config), &truth);
    println!(
        "result @ t={t}: found {}/{} students ({:.0}%), {} false positives ({:.0}%), \
         {:.0}% of found classified in the correct graduation year",
        point.found,
        truth.len(),
        point.pct_found(truth.len()),
        point.false_positives,
        point.pct_false_positives(),
        point.pct_correct_year(),
    );
}
