//! Chaos intensity sweep: run the full HS1 attack with the resilient
//! crawler against increasingly hostile platforms — multiples of the
//! canonical `FaultPlan::chaos()` profile — and append the headline
//! survival numbers to `BENCH_chaos.json` at the workspace root.
//!
//! ```sh
//! cargo run --release --example chaos_sweep        # or scripts/chaos.sh
//! ```
//!
//! Each row answers: did the attack complete at this fault intensity,
//! what did it find, and what did surviving cost (retries, recruited
//! accounts, extra requests, virtual wall-clock)?

use hs_profiler::core::{evaluate, run_basic, run_enhanced, Completeness, EnhanceOptions};
use hs_profiler::crawler::{CrawlError, OsnAccess};
use hs_profiler::experiments::runner::Lab;
use hs_profiler::platform::FaultPlan;
use hs_profiler::synth::ScenarioConfig;

const SEED: u64 = 0x9d5f_2013;

struct SweepRow {
    factor: f64,
    completed: bool,
    error: Option<String>,
    found: usize,
    correct_year: usize,
    false_positives: usize,
    total_requests: u64,
    retries: u64,
    suspensions: u64,
    recruited: u64,
    partial_friend_lists: usize,
    virtual_minutes: f64,
}

/// `full_attack` with errors reported instead of panicking — at high
/// fault intensity, dying *is* a legitimate data point.
fn attack(lab: &Lab, access: &mut dyn OsnAccess) -> Result<(usize, usize, usize), CrawlError> {
    let config = lab.attack_config();
    let discovery = run_basic(access, &config)?;
    let t = config.school_size_estimate as usize;
    let enhanced = run_enhanced(
        access,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: lab.scenario.home_city },
    )?;
    let truth = lab.ground_truth();
    let point =
        evaluate(t, &enhanced.guessed_students(t), |u| enhanced.inferred_year(u, &config), &truth);
    Ok((point.found, point.correct_year, point.false_positives))
}

fn sweep_point(factor: f64) -> SweepRow {
    let plan = if factor == 0.0 { FaultPlan::default() } else { FaultPlan::chaos().scaled(factor) };
    let lab = Lab::facebook_chaotic(&ScenarioConfig::hs1(), plan);
    let mut access = lab.resilient_crawler(2, "atk", SEED);
    let outcome = attack(&lab, access.as_mut());
    let completeness = Completeness::from_access(access.as_ref());
    let snap = lab.obs.snapshot();
    let effort = access.effort();
    let (found, correct_year, false_positives) = *outcome.as_ref().unwrap_or(&(0, 0, 0));
    SweepRow {
        factor,
        completed: outcome.is_ok(),
        error: outcome.err().map(|e| e.to_string()),
        found,
        correct_year,
        false_positives,
        total_requests: effort.total(),
        retries: effort.retry_requests,
        suspensions: snap.counter("crawler_account_suspensions_total"),
        recruited: snap.counter("crawler_accounts_recruited_total"),
        partial_friend_lists: completeness.incomplete_friend_lists.len(),
        virtual_minutes: lab.platform.clock.now_ms() as f64 / 60_000.0,
    }
}

/// Append the sweep to `<workspace>/BENCH_chaos.json` (a JSON array of
/// run objects; created on first use), mirroring `BENCH_obs.json`.
fn append_headline(rows: &[SweepRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_chaos.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    for row in rows {
        let mut entry = serde_json::Map::new();
        entry.insert("bench".into(), serde_json::Value::from("chaos_hs1"));
        entry.insert("fault_factor".into(), serde_json::Value::from(row.factor));
        entry.insert("completed".into(), serde_json::Value::from(row.completed));
        if let Some(e) = &row.error {
            entry.insert("error".into(), serde_json::Value::from(e.as_str()));
        }
        entry.insert("found".into(), serde_json::Value::from(row.found as u64));
        entry.insert("correct_year".into(), serde_json::Value::from(row.correct_year as u64));
        entry.insert("false_positives".into(), serde_json::Value::from(row.false_positives as u64));
        entry.insert("total_requests".into(), serde_json::Value::from(row.total_requests));
        entry.insert("retries".into(), serde_json::Value::from(row.retries));
        entry.insert("suspensions".into(), serde_json::Value::from(row.suspensions));
        entry.insert("accounts_recruited".into(), serde_json::Value::from(row.recruited));
        entry.insert(
            "partial_friend_lists".into(),
            serde_json::Value::from(row.partial_friend_lists as u64),
        );
        entry.insert("virtual_minutes".into(), serde_json::Value::from(row.virtual_minutes));
        if let Some(arr) = runs.as_array_mut() {
            arr.push(serde_json::Value::Object(entry));
        }
    }
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[chaos] appended {} rows to BENCH_chaos.json", rows.len());
        }
    }
}

fn main() {
    println!("chaos sweep: HS1 attack vs fault intensity (seed {SEED:#x})");
    println!(
        "{:>6}  {:>9}  {:>5}  {:>5}  {:>8}  {:>7}  {:>9}  {:>9}  {:>8}  {:>8}",
        "factor",
        "completed",
        "found",
        "year",
        "requests",
        "retries",
        "suspended",
        "recruited",
        "partial",
        "virt-min"
    );
    let mut rows = Vec::new();
    for factor in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let row = sweep_point(factor);
        println!(
            "{:>6.1}  {:>9}  {:>5}  {:>5}  {:>8}  {:>7}  {:>9}  {:>9}  {:>8}  {:>8.1}",
            row.factor,
            if row.completed { "yes" } else { "DIED" },
            row.found,
            row.correct_year,
            row.total_requests,
            row.retries,
            row.suspensions,
            row.recruited,
            row.partial_friend_lists,
            row.virtual_minutes
        );
        if let Some(e) = &row.error {
            println!("        ^ died with: {e}");
        }
        rows.push(row);
    }
    append_headline(&rows);
}
