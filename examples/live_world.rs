//! Live world: run the attack against a platform that mutates
//! underneath it — signups, friendings/defriendings, privacy flips,
//! deactivations, graduation rollover — sweep churn intensity against
//! crawl pacing, gate the freshness frontier, and append the rows to
//! `BENCH_live.json` at the workspace root.
//!
//! ```sh
//! cargo run --release --example live_world          # or scripts/live.sh
//! LIVE_SCENARIO=tiny cargo run --release --example live_world   # CI smoke
//! ```
//!
//! Gates (the run panics if any fails):
//! - Churn-rate zero is a strict no-op: the live-armed platform serves
//!   the frozen baseline byte-for-byte — same effort ledger, same
//!   Table-4 numbers, same trace digest, same virtual wall-clock.
//! - Every cell's trace audit closes: mutation events, stale re-fetch
//!   and tombstone annotations all reconcile against their ledgers.
//! - Applied-mutation counts are monotone in churn factor per pacing,
//!   and the hottest cell actually mutated (non-vacuity).
//! - The hottest cell reproduces exactly from the same seed.
//! - Chaos + Medium detector + mutations simultaneously replay
//!   bit-identically at 1 and 8 scheduler workers (request-carried
//!   virtual time makes the schedule worker-count invariant).

use hs_profiler::crawler::{Effort, Politeness};
use hs_profiler::experiments::runner::{full_attack_with, AttackRun, Lab};
use hs_profiler::experiments::trace_audit::audit_trace;
use hs_profiler::platform::{DefenseConfig, DetectorStrength, FaultPlan, PlatformConfig};
use hs_profiler::synth::ScenarioConfig;

const SEED: u64 = 0x11FE_2013;
const FACTORS: [f64; 4] = [0.0, 1.0, 4.0, 16.0];
const PACES: [(&str, u64); 2] = [("paper", 1_500), ("slow", 6_000)];
/// Lossless flight-recorder capacity for a full HS1 crawl; any drop
/// voids the digest gates, so size generously.
const TRACE_CAP: usize = 1 << 18;

#[derive(Clone, PartialEq, Debug)]
struct Cell {
    factor: f64,
    pace: &'static str,
    pace_ms: u64,
    found: usize,
    correct_year: usize,
    false_positives: usize,
    mutations_applied: usize,
    mutations_scheduled: usize,
    state_digest: u64,
    trace_digest: String,
    effort: Effort,
    virtual_minutes: f64,
}

fn eval(lab: &Lab, run: &AttackRun) -> (usize, usize, usize) {
    let truth = lab.ground_truth();
    let t = run.config.school_size_estimate as usize;
    let point = hs_profiler::core::evaluate(
        t,
        &run.enhanced.guessed_students(t),
        |u| run.enhanced.inferred_year(u, &run.config),
        &truth,
    );
    (point.found, point.correct_year, point.false_positives)
}

/// One attack against `lab` at the given pacing; panics unless the
/// trace audit closes over everything the crawl and the world did.
fn measure(lab: &Lab, factor: f64, pace: &'static str, pace_ms: u64) -> Cell {
    lab.obs.enable_tracing(TRACE_CAP);
    let politeness = Politeness { sleep_ms_between_requests: pace_ms, ..Politeness::default() };
    let accounts = lab.paper_account_count();
    let access = lab.paced_crawler(accounts, "live", SEED, politeness);
    let run = full_attack_with(lab, access);
    assert_eq!(lab.obs.tracer().dropped(), 0, "trace ring overflowed; raise TRACE_CAP");
    let audit = audit_trace(&lab.obs, &run.effort_total);
    assert!(
        audit.closed(),
        "[x{factor} {pace}] audit must close, unexplained: {:#?}",
        audit.unexplained
    );
    let (found, correct_year, false_positives) = eval(lab, &run);
    Cell {
        factor,
        pace,
        pace_ms,
        found,
        correct_year,
        false_positives,
        mutations_applied: lab.platform.mutations.applied_count(),
        mutations_scheduled: lab.platform.mutations.event_count(),
        state_digest: lab.platform.mutations.state_digest(),
        trace_digest: audit.digest,
        effort: run.effort_total,
        virtual_minutes: lab.platform.clock.now_ms() as f64 / 60_000.0,
    }
}

fn live_cell(cfg: &ScenarioConfig, factor: f64, pace: &'static str, pace_ms: u64) -> Cell {
    let lab = Lab::facebook_live(cfg, factor);
    measure(&lab, factor, pace, pace_ms)
}

/// The frozen reference (no mutation engine in the config at all) that
/// the churn-zero cells must reproduce byte-for-byte.
fn frozen_baseline(cfg: &ScenarioConfig, pace: &'static str, pace_ms: u64) -> Cell {
    let lab = Lab::facebook(cfg);
    measure(&lab, 0.0, pace, pace_ms)
}

fn gate_frontier(scenario: &str, cells: &[Cell], baselines: &[Cell]) {
    for base in baselines {
        let zero =
            cells.iter().find(|c| c.factor == 0.0 && c.pace == base.pace).expect("zero-rate cell");
        assert_eq!(
            zero.trace_digest, base.trace_digest,
            "[{scenario}/{}] zero churn must replay the frozen trace bit-for-bit",
            base.pace
        );
        assert_eq!(
            zero.effort, base.effort,
            "[{scenario}/{}] zero churn must leave the effort ledger unchanged",
            base.pace
        );
        assert_eq!(
            (zero.found, zero.correct_year, zero.false_positives),
            (base.found, base.correct_year, base.false_positives),
            "[{scenario}/{}] zero churn must reproduce the frozen Table 4 exactly",
            base.pace
        );
        assert_eq!(
            zero.virtual_minutes, base.virtual_minutes,
            "[{scenario}/{}] zero churn must leave the virtual wall-clock unchanged",
            base.pace
        );
        assert_eq!(zero.mutations_applied, 0);
    }
    for (pace, _) in PACES {
        let applied: Vec<usize> = FACTORS
            .iter()
            .map(|&f| {
                cells
                    .iter()
                    .find(|c| c.factor == f && c.pace == pace)
                    .expect("sweep cell")
                    .mutations_applied
            })
            .collect();
        assert!(
            applied.windows(2).all(|w| w[0] <= w[1]),
            "[{scenario}/{pace}] applied mutations must be monotone in churn, got {applied:?}"
        );
        assert!(
            *applied.last().unwrap() > 0,
            "[{scenario}/{pace}] the hottest cell never mutated — the sweep is vacuous"
        );
    }
    let churn_annotations: u64 = cells
        .iter()
        .filter(|c| c.factor > 0.0)
        .map(|c| c.effort.stale_refetch_requests + c.effort.tombstones)
        .sum();
    assert!(
        churn_annotations > 0,
        "[{scenario}] churn never produced a stale re-fetch or tombstone — \
         the staleness protocol was never exercised"
    );
}

/// The worst-case determinism gate: chaos on the wire, the Medium
/// detector escalating, the world churning at x16 — and the parallel
/// scheduler must still produce bit-identical mutation state, effort
/// and trace digests at 1 and 8 workers. Always runs on the tiny world
/// (the property is scenario-independent; the sweep above covers scale).
fn parallel_replay_fingerprint(workers: usize) -> (String, Effort, u64, u64) {
    let cfg = ScenarioConfig::tiny();
    let lab = Lab::facebook_configured(
        &cfg,
        PlatformConfig {
            faults: FaultPlan::chaos(),
            defense: DefenseConfig {
                strength: DetectorStrength::Medium,
                ..DefenseConfig::default()
            },
            mutations: Lab::churn_plan(&cfg, 16.0),
            ..PlatformConfig::default()
        },
    );
    lab.obs.enable_tracing(TRACE_CAP);
    let access = Box::new(lab.parallel_crawler(2, workers, "atk", SEED));
    let run = full_attack_with(&lab, access);
    assert_eq!(lab.obs.tracer().dropped(), 0, "trace ring overflowed; raise TRACE_CAP");
    assert!(lab.platform.mutations.applied_count() > 0, "replay gate must see mutations");
    (
        run.access.checkpoint().to_json().unwrap(),
        run.effort_total,
        lab.platform.mutations.state_digest(),
        lab.obs.tracer().digest(),
    )
}

/// Append the sweep to `<workspace>/BENCH_live.json` (a JSON array of
/// run objects; created on first use), mirroring `BENCH_defense.json`.
fn append_headline(scenario: &str, cells: &[Cell]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_live.json");
    let mut runs: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!([]));
    for cell in cells {
        let entry = serde_json::json!({
            "bench": format!("live_world_{scenario}"),
            "churn_factor": cell.factor,
            "pace": cell.pace,
            "pace_ms": cell.pace_ms,
            "found": cell.found as u64,
            "correct_year": cell.correct_year as u64,
            "false_positives": cell.false_positives as u64,
            "mutations_applied": cell.mutations_applied as u64,
            "mutations_scheduled": cell.mutations_scheduled as u64,
            "mutation_state_digest": format!("{:016x}", cell.state_digest),
            "trace_digest": cell.trace_digest,
            "total_requests": cell.effort.total(),
            "stale_refetches": cell.effort.stale_refetch_requests,
            "tombstones": cell.effort.tombstones,
            "retries": cell.effort.retry_requests,
            "virtual_minutes": cell.virtual_minutes,
        });
        if let Some(arr) = runs.as_array_mut() {
            arr.push(entry);
        }
    }
    if let Ok(body) = serde_json::to_string_pretty(&runs) {
        if std::fs::write(path, body).is_ok() {
            eprintln!("[live-world] appended {} rows to BENCH_live.json", cells.len());
        }
    }
}

fn main() {
    let scenario = std::env::var("LIVE_SCENARIO").unwrap_or_else(|_| "hs1".to_string());
    let cfg = match scenario.as_str() {
        "hs1" => ScenarioConfig::hs1(),
        "tiny" => ScenarioConfig::tiny(),
        other => panic!("unknown LIVE_SCENARIO {other:?} (use hs1 or tiny)"),
    };
    println!("live world: {scenario} attack vs churn rate vs crawl pacing (seed {SEED:#x})");
    println!(
        "{:>6}  {:>6}  {:>9}  {:>9}  {:>10}  {:>10}  {:>8}  {:>5}  {:>8}",
        "churn",
        "pace",
        "scheduled",
        "applied",
        "tombstones",
        "stale-ref",
        "requests",
        "found",
        "virt-min"
    );
    let mut baselines = Vec::new();
    let mut cells = Vec::new();
    for (pace, pace_ms) in PACES {
        baselines.push(frozen_baseline(&cfg, pace, pace_ms));
        for factor in FACTORS {
            let cell = live_cell(&cfg, factor, pace, pace_ms);
            println!(
                "{:>6}  {:>6}  {:>9}  {:>9}  {:>10}  {:>10}  {:>8}  {:>5}  {:>8.1}",
                format!("x{factor:.0}"),
                cell.pace,
                cell.mutations_scheduled,
                cell.mutations_applied,
                cell.effort.tombstones,
                cell.effort.stale_refetch_requests,
                cell.effort.total(),
                cell.found,
                cell.virtual_minutes
            );
            cells.push(cell);
        }
    }
    gate_frontier(&scenario, &cells, &baselines);
    // Determinism gate: the hottest cell must reproduce exactly.
    let (pace, pace_ms) = PACES[PACES.len() - 1];
    let replay = live_cell(&cfg, *FACTORS.last().unwrap(), pace, pace_ms);
    let first = cells
        .iter()
        .find(|c| c.factor == *FACTORS.last().unwrap() && c.pace == pace)
        .expect("hottest cell");
    assert_eq!(*first, replay, "[{scenario}] live-world rows must be deterministic per seed");
    // Worker-count gate: chaos + detector + churn, 1 vs 8 workers.
    let one = parallel_replay_fingerprint(1);
    let eight = parallel_replay_fingerprint(8);
    assert_eq!(
        one, eight,
        "chaos+detector+mutations must replay bit-identically across worker counts"
    );
    println!(
        "[live-world] gates passed: zero-rate==frozen, closed audits, monotone+non-vacuous \
         mutations, deterministic replay, 1==8 workers under chaos+detector+churn"
    );
    append_headline(&scenario, &cells);
}
