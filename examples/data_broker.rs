//! Data-broker threat chain (paper §2): attack a school, construct the
//! per-student dossiers, buy the (synthetic) city voter roll, link
//! students to street addresses — with the paper's friend-list
//! confirmation — then measure the spear-phishing channel and aggregate
//! exposure.
//!
//! ```sh
//! cargo run --release --example data_broker [-- --full]
//! ```

use hs_profiler::core::{construct_profile, recover_friend_lists};
use hs_profiler::experiments::{full_attack, Lab};
use hs_profiler::synth::ScenarioConfig;
use hs_profiler::threats::{
    exposure_of, link_students, run_campaign, ExposureDistribution, VoterRoll,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full { ScenarioConfig::hs1() } else { ScenarioConfig::tiny() };

    // 1. Run the paper's attack.
    let mut lab = Lab::facebook(&cfg);
    let mut run = full_attack(&mut lab, false);
    let t = run.config.school_size_estimate as usize;
    let guessed = run.enhanced.guessed_students(t);
    let rec = recover_friend_lists(run.access.as_mut(), &guessed).expect("reverse lookup");
    println!(
        "attack: {} suspected students; {} hidden friend lists reconstructed (avg {:.0} names)",
        guessed.len(),
        rec.recovered.len(),
        rec.avg_recovered_len()
    );

    // 2. Build the dossiers from scraped pages only.
    let mut profiles = Vec::new();
    let mut link_inputs = Vec::new();
    for &u in &guessed {
        let Some(year) = run.enhanced.inferred_year(u, &run.config) else { continue };
        let scraped = run.access.profile(u).expect("profile");
        let friends = rec.friends_of(u).to_vec();
        let last = scraped.name.split_whitespace().last().unwrap_or_default().to_string();
        profiles.push(construct_profile(
            &scraped,
            u,
            lab.scenario.school,
            lab.scenario.home_city,
            year,
            friends.clone(),
        ));
        link_inputs.push((u, last, lab.scenario.home_city, friends));
    }

    // 3. "Buy" the voter roll (public records — synthesised here) and link.
    let roll = VoterRoll::build(&lab.scenario.network, lab.scenario.config.seed);
    let (links, stats) = link_students(&lab.scenario.network, &roll, link_inputs);
    println!("\nvoter roll: {} records", roll.len());
    println!(
        "addresses resolved: {} of {} dossiers ({:.0}%), precision {:.0}%",
        stats.resolved_total,
        stats.students,
        stats.pct_resolved(),
        stats.precision()
    );
    println!(
        "  friend-list confirmed: {}   unique household: {}   ambiguous: {}",
        stats.friend_confirmed, stats.unique_household, stats.ambiguous
    );

    // 4. Measure the spear-phishing channel (composition + deliverability
    //    only; see hsp-threats docs).
    let school_name = lab.scenario.network.school(lab.scenario.school).name.to_string();
    let names: std::collections::HashMap<_, _> =
        lab.scenario.network.users().map(|u| (u.id, u.profile.full_name())).collect();
    let campaign =
        run_campaign(run.access.as_mut(), &profiles, &school_name, |f| names.get(&f).cloned())
            .expect("campaign");
    println!(
        "\nphishing channel: {} of {} targets directly messageable ({:.0}%)",
        campaign.delivered,
        campaign.targets,
        campaign.pct_delivered()
    );

    // 5. Exposure distribution (0–5 components).
    let mut dist = ExposureDistribution::default();
    for (p, l) in profiles.iter().zip(&links) {
        dist.add(&exposure_of(p, Some(l)));
    }
    println!("\nexposure (school+grade / address / photos / messageable / friends):");
    for (score, n) in dist.counts.iter().enumerate() {
        println!("  {score} of 5 components: {n} students {}", "#".repeat(n / 3));
    }
    println!("high exposure (>=4 components): {} of {}", dist.at_least(4), dist.total());
}
