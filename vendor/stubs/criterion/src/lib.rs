//! Offline stand-in for `criterion`: same macro/API surface, minimal
//! engine. Each benchmark runs a short warmup plus a fixed number of
//! timed iterations and prints mean wall-clock per iteration — no
//! statistics, outlier analysis, or HTML reports. Honors
//! `CRITERION_STUB_ITERS` for the iteration count (default 10; set 1
//! for a smoke run). See `vendor/stubs/README.md`.

use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn stub_iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup round, untimed.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// Throughput annotation (accepted, reported alongside the mean).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let iters = stub_iters();
    let mut b = Bencher { iters, total: Duration::ZERO };
    f(&mut b);
    let mean = b.total.checked_div(iters as u32).unwrap_or_default();
    println!("bench {id:<40} {mean:>12.3?}/iter ({iters} iters)");
}

/// Group of related benchmarks (`c.benchmark_group(...)`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self.configure()
    }

    fn configure(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
