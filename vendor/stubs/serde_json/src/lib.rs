//! Offline stand-in for `serde_json`, functional over the stub serde's
//! JSON value tree: `to_string`/`to_string_pretty`/`to_value` render
//! any `Serialize` type, `from_str`/`from_value` rebuild any
//! `Deserialize` type, and `json!` builds [`Value`] literals. See
//! `vendor/stubs/README.md`.

pub use serde::value::{Map, Number, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<String> for Error {
    fn from(msg: String) -> Error {
        Error(msg)
    }
}

pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_compact())
}

/// Render `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().render_pretty())
}

/// Render `value` as a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let tree = serde::value::parse(s).map_err(Error)?;
    T::from_json_value(&tree).map_err(Error)
}

/// Parse a JSON byte slice into any deserializable type.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value).map_err(Error)
}

#[doc(hidden)]
pub mod __private {
    /// `json!` support: lift any `Serialize` expression into a `Value`.
    pub fn to_value<T: serde::Serialize>(value: &T) -> crate::Value {
        value.to_json_value()
    }
}

/// Build a [`Value`] from a JSON-ish literal. Object values and array
/// elements are arbitrary `Serialize` expressions (including nested
/// `json!` calls); keys are string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(($key).to_string(), $crate::__private::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::__private::to_value(&$elem)),* ])
    };
    ($other:expr) => { $crate::__private::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![json!({ "a": 1u32 }), json!({ "a": 2u32 })];
        let v = json!({
            "name": "x",
            "pi": 3.5,
            "nested": json!({ "k": "v" }),
            "rows": rows,
            "none": json!(null),
        });
        assert!(v.is_object());
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("nested").and_then(|n| n.get("k")).and_then(Value::as_str), Some("v"));
        assert_eq!(v.get("rows").and_then(Value::as_array).map(Vec::len), Some(2));
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn value_round_trips_collections() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        m.insert(7, vec!["a".into(), "b".into()]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"7":["a","b"]}"#);
        let back: BTreeMap<u32, Vec<String>> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }
}
