//! Offline stand-in for `serde_derive` with real field-aware codegen.
//!
//! Instead of serde's visitor machinery, the stand-in serde pins its
//! data model to a JSON value tree, so the derives only need to emit
//! `to_json_value` / `from_json_value` bodies. The input is parsed by a
//! hand-rolled token scan (no `syn`), which covers the shapes this
//! workspace uses: named-field structs, tuple structs, unit structs,
//! and enums with unit or struct variants (externally tagged, matching
//! serde's default representation). `#[serde(...)]` attributes are
//! accepted but ignored. Unsupported shapes (generics, tuple enum
//! variants) produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit, Some = struct variant
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Skip `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attrs(tts: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tts.len() {
        match (&tts[i], &tts[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tts: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tts.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tts.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or other run of tokens) until a comma at
/// angle-bracket depth zero. Parens/brackets/braces arrive as single
/// groups, so only `<`/`>` need explicit depth tracking.
fn skip_until_comma(tts: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tts.len() {
        if let TokenTree::Punct(p) = &tts[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named-field lists.
fn parse_named_fields(body: &TokenStream) -> Result<Vec<Field>, String> {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        i = skip_vis(&tts, skip_attrs(&tts, i));
        if i >= tts.len() {
            break;
        }
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found '{other}'")),
        };
        i += 1;
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected ':' after field '{name}'")),
        }
        i = skip_until_comma(&tts, i);
        i += 1; // past the comma (or off the end)
        fields.push(Field { name });
    }
    Ok(fields)
}

/// Count tuple-struct fields: top-level commas + 1.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut i = 0;
    while i < tts.len() {
        i = skip_until_comma(&tts, i);
        if i < tts.len() {
            count += 1;
            i += 1;
        }
    }
    count
}

fn parse_variants(body: &TokenStream) -> Result<Vec<Variant>, String> {
    let tts: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tts.len() {
        i = skip_attrs(&tts, i);
        if i >= tts.len() {
            break;
        }
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found '{other}'")),
        };
        i += 1;
        let fields = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "stub serde_derive does not support tuple enum variant '{name}'"
                ));
            }
            _ => None,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        i = skip_until_comma(&tts, i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_input(input: &TokenStream) -> Result<Input, String> {
    let tts: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = 0;
    loop {
        i = skip_vis(&tts, skip_attrs(&tts, i));
        match tts.get(i) {
            None => return Err("no struct/enum found".to_string()),
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    i += 1;
                    let name = match tts.get(i) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => return Err("expected type name".to_string()),
                    };
                    i += 1;
                    if let Some(TokenTree::Punct(p)) = tts.get(i) {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "stub serde_derive does not support generic type '{name}'"
                            ));
                        }
                    }
                    let shape = match tts.get(i) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            if kw == "struct" {
                                Shape::NamedStruct(parse_named_fields(&g.stream())?)
                            } else {
                                Shape::Enum(parse_variants(&g.stream())?)
                            }
                        }
                        Some(TokenTree::Group(g))
                            if g.delimiter() == Delimiter::Parenthesis && kw == "struct" =>
                        {
                            Shape::TupleStruct(count_tuple_fields(&g.stream()))
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kw == "struct" => {
                            Shape::UnitStruct
                        }
                        _ => return Err(format!("unsupported body for '{name}'")),
                    };
                    return Ok(Input { name, shape });
                }
                i += 1; // some other ident (e.g. doc text never appears, but be tolerant)
            }
            Some(_) => i += 1,
        }
    }
}

const VALUE: &str = "::serde::__private::Value";
const MAP: &str = "::serde::__private::Map";

fn serialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut body = format!("let mut m = {MAP}::new();\n");
            for f in fields {
                let fname = &f.name;
                body.push_str(&format!(
                    "m.insert({fname:?}.to_string(), ::serde::Serialize::to_json_value(&self.{fname}));\n"
                ));
            }
            body.push_str(&format!("{VALUE}::Object(m)"));
            body
        }
        Shape::TupleStruct(1) => {
            // Newtype: transparent over the inner value, like serde.
            "::serde::Serialize::to_json_value(&self.0)".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_json_value(&self.{i})")).collect();
            format!("{VALUE}::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => format!("{VALUE}::Null"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => {VALUE}::String({vname:?}.to_string()),\n"
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = format!("let mut m = {MAP}::new();\n");
                        for f in fields {
                            let fname = &f.name;
                            inner.push_str(&format!(
                                "m.insert({fname:?}.to_string(), ::serde::Serialize::to_json_value({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {inner} let mut outer = {MAP}::new(); \
                             outer.insert({vname:?}.to_string(), {VALUE}::Object(m)); \
                             {VALUE}::Object(outer) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

fn named_fields_ctor(prefix: &str, fields: &[Field], source: &str) -> String {
    let mut ctor = format!("{prefix} {{\n");
    for f in fields {
        let fname = &f.name;
        ctor.push_str(&format!(
            "{fname}: ::serde::Deserialize::from_json_value({source}.get({fname:?}).unwrap_or(&{VALUE}::Null)).map_err(|e| format!(\"{prefix}.{fname}: {{e}}\"))?,\n"
        ));
    }
    ctor.push('}');
    ctor
}

fn deserialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.shape {
        Shape::NamedStruct(fields) => {
            format!(
                "let obj = v.as_object().ok_or_else(|| format!(\"expected object for {name}, got {{}}\", v))?;\nOk({})",
                named_fields_ctor(name, fields, "obj")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json_value(arr.get({i}).unwrap_or(&{VALUE}::Null))?"
                    )
                })
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| format!(\"expected array for {name}\"))?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"))
                    }
                    Some(fields) => {
                        let ctor = named_fields_ctor(&format!("{name}::{vname}"), fields, "inner");
                        tagged_arms.push_str(&format!(
                            "if let Some(inner) = obj.get({vname:?}) {{ return Ok({ctor}); }}\n"
                        ));
                    }
                }
            }
            let mut body = String::new();
            if !unit_arms.is_empty() {
                body.push_str(&format!(
                    "if let Some(s) = v.as_str() {{ match s {{\n{unit_arms}_ => {{}} }} }}\n"
                ));
            }
            if !tagged_arms.is_empty() {
                body.push_str(&format!("if let Some(obj) = v.as_object() {{\n{tagged_arms}}}\n"));
            }
            body.push_str(&format!("Err(format!(\"no variant of {name} matches {{}}\", v))"));
            body
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(&input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = serialize_body(&parsed);
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> {VALUE} {{\n{body}\n}}\n}}"
    );
    out.parse().unwrap_or_else(|_| compile_error("stub serde_derive generated invalid code"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(&input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = deserialize_body(&parsed);
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_json_value(v: &{VALUE}) -> Result<Self, String> {{\n{body}\n}}\n}}"
    );
    out.parse().unwrap_or_else(|_| compile_error("stub serde_derive generated invalid code"))
}
