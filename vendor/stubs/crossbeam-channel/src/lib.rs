//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Covers the subset this workspace uses: `bounded`/`unbounded`
//! constructors, cloneable `Sender`/`Receiver`, blocking `send`/`recv`
//! and `try_recv`. Cloneable receivers are emulated by sharing one mpsc
//! receiver behind a mutex, which preserves the work-queue semantics
//! (each message is delivered to exactly one receiver).

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// Why a `try_send` failed, mirroring crossbeam's enum: the payload is
/// handed back in either case so the caller can dispose of it
/// explicitly (e.g. shed the connection with a 503).
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Blocks while the channel is full, like crossbeam's bounded send.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg)
    }

    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        self.0.try_send(msg).map_err(|e| match e {
            mpsc::TrySendError::Full(v) => TrySendError::Full(v),
            mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
        })
    }
}

pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let guard = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let guard = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.try_recv()
    }
}

/// Channel with a bounded buffer: sends block once `cap` messages are
/// queued (cap 0 degrades to a rendezvous channel, as in crossbeam).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
}

/// Unbounded channel (a large sync buffer; practically unbounded for
/// this workspace's test-scale workloads).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(1 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_to_cloned_receivers() {
        let (tx, rx) = bounded::<u32>(8);
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err(), "disconnects when senders are gone");
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }
}
