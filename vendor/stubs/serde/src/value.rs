//! The JSON value tree the stand-in serde pins its data model to,
//! with text rendering and parsing (re-exported by the `serde_json`
//! stand-in as `serde_json::Value`).

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. BTreeMap gives deterministic key order,
/// matching serde_json's default (non-`preserve_order`) build.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number. Integers keep their exact representation so u64/i64
/// round-trip losslessly; floats render with Rust's shortest
/// round-trip formatting.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }

    pub(crate) fn render(&self) -> String {
        match *self {
            Number::PosInt(n) => n.to_string(),
            Number::NegInt(n) => n.to_string(),
            Number::Float(f) if f.is_finite() => {
                // {:?} is Rust's shortest round-trip float form.
                format!("{f:?}")
            }
            // serde_json renders non-finite floats as null.
            Number::Float(_) => "null".to_string(),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Index into an object (`&str` key) or array (`usize` index).
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some("  "), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<&str>, depth: usize) {
        let (nl, pad, pad_in, colon) = match indent {
            Some(unit) => ("\n", unit.repeat(depth), unit.repeat(depth + 1), ": "),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.render()),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.render(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    render_string(k, out);
                    out.push_str(colon);
                    v.render(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            f.write_str(&self.render_pretty())
        } else {
            f.write_str(&self.render_compact())
        }
    }
}

/// Polymorphic `Value::get` index (object key or array position).
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(*self))
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- From conversions (used by the json! macro) --------------------

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

macro_rules! from_uint {
    ($($ty:ty),*) => {
        $(impl From<$ty> for Value {
            fn from(n: $ty) -> Value { Value::Number(Number::PosInt(n as u64)) }
        })*
    };
}

macro_rules! from_int {
    ($($ty:ty),*) => {
        $(impl From<$ty> for Value {
            fn from(n: $ty) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        })*
    };
}

from_uint!(u8, u16, u32, u64, usize);
from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::Float(f as f64))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

// ---- parsing -------------------------------------------------------

/// Parse a JSON document. Errors carry a byte offset and message.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{tok}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // {
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xd800) << 10)
                                    + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if float {
            Number::Float(text.parse().map_err(|_| self.err("bad number"))?)
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(n) => Number::NegInt(n),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("bad number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::PosInt(n),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("bad number"))?),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x\"\né"},"d":18446744073709551615}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.render_compact()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("d").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\"\n\u{e9}")
        );
        let pretty = parse(&v.render_pretty()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
