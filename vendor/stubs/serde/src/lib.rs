//! Offline stand-in for `serde`, functional for JSON.
//!
//! Unlike the real serde's visitor architecture, this stand-in pins the
//! data model to a JSON [`value::Value`] tree: `Serialize` means "can
//! render to a Value", `Deserialize` means "can be rebuilt from one".
//! The `serde_derive` stand-in emits real field-aware impls, and the
//! `serde_json` stand-in supplies text parsing/rendering over the same
//! tree — enough for every serde use in this workspace to round-trip
//! offline. See `vendor/stubs/README.md`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod value;

/// Paths the derive expansion uses; not a public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::value::{Map, Number, Value};
}

use value::{Map, Number, Value};

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`]. The lifetime
/// parameter only mirrors the real serde signature; this stand-in
/// always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    fn from_json_value(v: &Value) -> Result<Self, String>;
}

/// Owned-deserialization alias, mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

fn type_err<T>(v: &Value) -> Result<T, String> {
    Err(format!("expected {}, got {}", std::any::type_name::<T>(), v.kind_name()))
}

// ---- scalar impls --------------------------------------------------

macro_rules! ser_de_uint {
    ($($ty:ty),*) => {
        $(
            impl Serialize for $ty {
                fn to_json_value(&self) -> Value {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    match v.as_u64() {
                        Some(n) => Ok(n as $ty),
                        None => type_err::<$ty>(v),
                    }
                }
            }
        )*
    };
}

macro_rules! ser_de_int {
    ($($ty:ty),*) => {
        $(
            impl Serialize for $ty {
                fn to_json_value(&self) -> Value {
                    let n = *self as i64;
                    if n >= 0 {
                        Value::Number(Number::PosInt(n as u64))
                    } else {
                        Value::Number(Number::NegInt(n))
                    }
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    match v.as_i64() {
                        Some(n) => Ok(n as $ty),
                        None => type_err::<$ty>(v),
                    }
                }
            }
        )*
    };
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {
        $(
            impl Serialize for $ty {
                fn to_json_value(&self) -> Value {
                    Value::Number(Number::Float(*self as f64))
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    match v.as_f64() {
                        Some(n) => Ok(n as $ty),
                        // Real serde_json writes non-finite floats as
                        // null; accept them back as NaN.
                        None if v.is_null() => Ok(<$ty>::NAN),
                        None => type_err::<$ty>(v),
                    }
                }
            }
        )*
    };
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err::<bool>(v),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v.as_str().and_then(|s| {
            let mut it = s.chars();
            match (it.next(), it.next()) {
                (Some(c), None) => Some(c),
                _ => None,
            }
        }) {
            Some(c) => Ok(c),
            None => type_err::<char>(v),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v.as_str() {
            Some(s) => Ok(s.to_string()),
            None => type_err::<String>(v),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_json_value(_: &Value) -> Result<Self, String> {
        Ok(())
    }
}

// ---- container impls -----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v.as_array() {
            Some(items) => items.iter().map(T::from_json_value).collect(),
            None => type_err::<Vec<T>>(v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Deserialize::from_json_value(v)?;
        let got = items.len();
        items.try_into().map_err(|_| format!("expected array of length {N}, got {got}"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_json_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.to_json_value()),+])
                }
            }
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    let items = match v.as_array() {
                        Some(items) => items,
                        None => return Err(format!("expected tuple array, got {}", v.kind_name())),
                    };
                    Ok(($(
                        $name::from_json_value(
                            items.get($idx).unwrap_or(&Value::Null)
                        )?,
                    )+))
                }
            }
        )*
    };
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// JSON object keys must be strings; integers (and integer newtypes)
/// are stringified, matching serde_json's map-key behaviour.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.render(),
        Value::Bool(b) => b.to_string(),
        other => other.render_compact(),
    }
}

/// Inverse of [`key_to_string`]: try the key as a string first, then
/// re-parse it as a number for integer-keyed maps.
fn key_from_string<'de, K: Deserialize<'de>>(key: &str) -> Result<K, String> {
    if let Ok(k) = K::from_json_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        return K::from_json_value(&Value::Number(Number::PosInt(n)));
    }
    if let Ok(n) = key.parse::<i64>() {
        return K::from_json_value(&Value::Number(Number::NegInt(n)));
    }
    if let Ok(n) = key.parse::<f64>() {
        return K::from_json_value(&Value::Number(Number::Float(n)));
    }
    Err(format!("cannot deserialize map key from '{key}'"))
}

macro_rules! ser_de_map {
    ($($map:ident requiring $($bound:path),+;)*) => {
        $(
            impl<K: Serialize, V: Serialize> Serialize for std::collections::$map<K, V> {
                fn to_json_value(&self) -> Value {
                    let mut out = Map::new();
                    for (k, v) in self {
                        out.insert(key_to_string(&k.to_json_value()), v.to_json_value());
                    }
                    Value::Object(out)
                }
            }
            impl<'de, K, V> Deserialize<'de> for std::collections::$map<K, V>
            where
                K: Deserialize<'de> $(+ $bound)+,
                V: Deserialize<'de>,
            {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    let obj = match v.as_object() {
                        Some(obj) => obj,
                        None => return Err(format!("expected object, got {}", v.kind_name())),
                    };
                    obj.iter()
                        .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_json_value(v)?)))
                        .collect()
                }
            }
        )*
    };
}

ser_de_map! {
    BTreeMap requiring Ord;
    HashMap requiring Eq, std::hash::Hash;
}

macro_rules! ser_de_set {
    ($($set:ident requiring $($bound:path),+;)*) => {
        $(
            impl<T: Serialize> Serialize for std::collections::$set<T> {
                fn to_json_value(&self) -> Value {
                    Value::Array(self.iter().map(Serialize::to_json_value).collect())
                }
            }
            impl<'de, T> Deserialize<'de> for std::collections::$set<T>
            where
                T: Deserialize<'de> $(+ $bound)+,
            {
                fn from_json_value(v: &Value) -> Result<Self, String> {
                    match v.as_array() {
                        Some(items) => items.iter().map(T::from_json_value).collect(),
                        None => Err(format!("expected array, got {}", v.kind_name())),
                    }
                }
            }
        )*
    };
}

ser_de_set! {
    BTreeSet requiring Ord;
    HashSet requiring Eq, std::hash::Hash;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
