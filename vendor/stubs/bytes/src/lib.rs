//! Offline stand-in for `bytes`: `Bytes`, `BytesMut` and the `Buf`
//! cursor trait, covering the subset this workspace uses. `Bytes`
//! shares its backing store on clone (`Arc<[u8]>`); `BytesMut` is a
//! growable buffer with an O(1) consumed-prefix cursor.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(&self.data).escape_debug())
    }
}

/// Read cursor over a byte container.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Growable byte buffer with an amortised-O(1) front cursor: `advance`
/// moves a start offset, and the consumed prefix is compacted once it
/// outgrows the live region.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(capacity), start: 0 }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.compact_if_large();
        self.buf.extend_from_slice(extend);
    }

    /// Split off the first `at` bytes into their own buffer.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut { buf: head, start: 0 }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::copy_from_slice(&self.buf[self.start..])
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    fn compact_if_large(&mut self) {
        if self.start > 4096 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.buf[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec(), start: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{}\"", String::from_utf8_lossy(self).escape_debug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_semantics() {
        let mut b = BytesMut::with_capacity(16);
        b.extend_from_slice(b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let head = b.split_to(3);
        assert_eq!(&head[..], b"wor");
        assert_eq!(&b.freeze()[..], b"ld");
    }

    #[test]
    fn bytes_shares_on_clone() {
        let a = Bytes::from("abc".to_string());
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
    }
}
