//! Regex-subset sampler backing string strategies (`"[a-z]{1,8}"`).
//!
//! Supported syntax: literals, `\`-escapes (`\n` `\r` `\t` `\d` `\w`
//! `\s` and escaped metacharacters), `.`, classes `[...]` with ranges,
//! negation (`[^...]`) and Java-style intersection (`[a-z&&[^cd]]`),
//! groups with alternation `(a|b)`, and the quantifiers `?` `*` `+`
//! `{m}` `{m,}` `{m,n}`. Unbounded quantifiers are capped at 8
//! repetitions (plus the minimum). The alphabet is printable ASCII plus
//! tab/newline/CR — a deliberate narrowing of real proptest's full
//! Unicode string generation.

use super::TestRng;

/// Character alphabet for `.` (which excludes `\n`) and for negated
/// classes (which don't).
fn universe() -> Vec<char> {
    let mut v: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    v.push('\t');
    v.push('\n');
    v.push('\r');
    v
}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<Vec<Node>>), // alternation branches, each a sequence
    Repeat(Box<Node>, usize, usize),
}

/// A compiled pattern: one top-level alternation.
#[derive(Debug, Clone)]
pub struct Pattern {
    branches: Vec<Vec<Node>>,
}

impl Pattern {
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let branches = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(format!("unexpected '{}' at {}", p.chars[p.pos], p.pos));
        }
        Ok(Pattern { branches })
    }

    pub fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let branch = &self.branches[rng.below(self.branches.len())];
        for node in branch {
            sample_node(node, rng, &mut out);
        }
        out
    }
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => {
            // An unsatisfiable class (e.g. [^\x00-\x7f] over an ASCII
            // alphabet) contributes nothing.
            if !set.is_empty() {
                out.push(set[rng.below(set.len())]);
            }
        }
        Node::Group(branches) => {
            let branch = &branches[rng.below(branches.len())];
            for n in branch {
                sample_node(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                sample_node(inner, rng, out);
            }
        }
    }
}

/// Cap for `*`, `+` and `{m,}`.
const UNBOUNDED_CAP: usize = 8;

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Vec<Vec<Node>>, String> {
        let mut branches = vec![self.sequence()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.sequence()?);
        }
        Ok(branches)
    }

    fn sequence(&mut self) -> Result<Vec<Node>, String> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom()?;
            seq.push(self.quantified(atom)?);
        }
        Ok(seq)
    }

    fn atom(&mut self) -> Result<Node, String> {
        match self.next() {
            Some('(') => {
                // Non-capturing marker is irrelevant here; skip it.
                if self.peek() == Some('?') {
                    self.pos += 1;
                    if self.peek() == Some(':') {
                        self.pos += 1;
                    }
                }
                let branches = self.alternation()?;
                match self.next() {
                    Some(')') => Ok(Node::Group(branches)),
                    _ => Err("unclosed group".to_string()),
                }
            }
            Some('[') => self.class(),
            Some('.') => {
                let set = universe().into_iter().filter(|&c| c != '\n').collect();
                Ok(Node::Class(set))
            }
            Some('\\') => self.escape().map(|set| {
                if set.len() == 1 {
                    Node::Literal(set[0])
                } else {
                    Node::Class(set)
                }
            }),
            Some(c) if !"*+?{".contains(c) => Ok(Node::Literal(c)),
            Some(c) => Err(format!("unexpected '{c}'")),
            None => Err("unexpected end of pattern".to_string()),
        }
    }

    /// One escape, as the set of characters it denotes.
    fn escape(&mut self) -> Result<Vec<char>, String> {
        match self.next() {
            Some('n') => Ok(vec!['\n']),
            Some('r') => Ok(vec!['\r']),
            Some('t') => Ok(vec!['\t']),
            Some('d') => Ok(('0'..='9').collect()),
            Some('w') => {
                let mut set: Vec<char> = ('a'..='z').collect();
                set.extend('A'..='Z');
                set.extend('0'..='9');
                set.push('_');
                Ok(set)
            }
            Some('s') => Ok(vec![' ', '\t', '\n', '\r']),
            Some(c) => Ok(vec![c]), // escaped metacharacter → literal
            None => Err("dangling escape".to_string()),
        }
    }

    /// A `[...]` class body (the opening `[` is already consumed).
    fn class(&mut self) -> Result<Node, String> {
        let mut set = self.class_items()?;
        // Java-style intersection: [a-z&&[^cd]].
        while self.peek() == Some('&') && self.chars.get(self.pos + 1) == Some(&'&') {
            self.pos += 2;
            let rhs = match self.next() {
                Some('[') => match self.class()? {
                    Node::Class(rhs) => rhs,
                    _ => unreachable!("class() yields Class"),
                },
                _ => return Err("expected '[' after '&&'".to_string()),
            };
            set.retain(|c| rhs.contains(c));
        }
        match self.next() {
            Some(']') => Ok(Node::Class(set)),
            _ => Err("unclosed character class".to_string()),
        }
    }

    /// Class members up to (not including) `]` or `&&`.
    fn class_items(&mut self) -> Result<Vec<char>, String> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut set: Vec<char> = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unclosed character class".to_string()),
                Some(']') => break,
                Some('&') if self.chars.get(self.pos + 1) == Some(&'&') => break,
                _ => {}
            }
            let lo = match self.next().unwrap() {
                '\\' => {
                    let esc = self.escape()?;
                    if esc.len() > 1 {
                        set.extend(esc);
                        continue;
                    }
                    esc[0]
                }
                c => c,
            };
            // Range, unless '-' is trailing (then it's a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']') {
                self.pos += 1;
                let hi = match self.next().unwrap() {
                    '\\' => self.escape()?[0],
                    c => c,
                };
                if lo > hi {
                    return Err(format!("invalid range {lo}-{hi}"));
                }
                set.extend(lo..=hi);
            } else {
                set.push(lo);
            }
        }
        if negated {
            Ok(universe().into_iter().filter(|c| !set.contains(c)).collect())
        } else {
            set.dedup();
            Ok(set)
        }
    }

    fn quantified(&mut self, atom: Node) -> Result<Node, String> {
        let (lo, hi) = match self.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_CAP),
            Some('+') => (1, UNBOUNDED_CAP + 1),
            Some('{') => {
                self.pos += 1;
                let lo = self.integer()?;
                let hi = match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                        if self.peek() == Some('}') {
                            lo + UNBOUNDED_CAP // {m,}
                        } else {
                            self.integer()? // {m,n}
                        }
                    }
                    _ => lo, // {m}
                };
                if self.next() != Some('}') {
                    return Err("unclosed quantifier".to_string());
                }
                if hi < lo {
                    return Err(format!("bad quantifier {{{lo},{hi}}}"));
                }
                return Ok(Node::Repeat(Box::new(atom), lo, hi));
            }
            _ => return Ok(atom),
        };
        self.pos += 1;
        Ok(Node::Repeat(Box::new(atom), lo, hi))
    }

    fn integer(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected number in quantifier".to_string());
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|e| format!("bad quantifier number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::compile(pattern).unwrap();
        let mut rng = TestRng::new(0xBEEF);
        (0..n).map(|_| p.sample(&mut rng)).collect()
    }

    #[test]
    fn literals_and_counts() {
        for s in samples("[A-Z][a-z]{2,6}", 100) {
            assert!(s.len() >= 3 && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().skip(1).all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn intersection_excludes() {
        for s in samples("[ -~&&[^\r\n]]{0,24}", 100) {
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_alternation() {
        for s in samples("/[a-z/.-]{0,8}(\\?[a-z=&%_.-]{0,8})?", 200) {
            assert!(s.starts_with('/'));
            if let Some(q) = s.find('?') {
                assert!(s[..q]
                    .chars()
                    .all(|c| c == '/' || "abcdefghijklmnopqrstuvwxyz.-".contains(c)));
            }
        }
        let picks = samples("(class|id|href|title)", 50);
        for s in &picks {
            assert!(["class", "id", "href", "title"].contains(&s.as_str()), "{s:?}");
        }
    }

    #[test]
    fn dot_star_and_escapes() {
        for s in samples(".*", 100) {
            assert!(s.len() <= UNBOUNDED_CAP);
            assert!(!s.contains('\n'));
        }
        assert_eq!(samples("a\\.b\\?", 3)[0], "a.b?");
        for s in samples("\\d{3}", 20) {
            assert!(s.len() == 3 && s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in samples("[a-]{4}", 50) {
            assert!(s.chars().all(|c| c == 'a' || c == '-'));
        }
    }

    #[test]
    fn bad_patterns_error() {
        assert!(Pattern::compile("[a-").is_err());
        assert!(Pattern::compile("(x").is_err());
        assert!(Pattern::compile("x{3").is_err());
        assert!(Pattern::compile("x{4,2}").is_err());
    }
}
