//! Offline stand-in for `proptest`: randomized property testing over
//! the same surface syntax (`proptest!`, `prop_compose!`,
//! `prop_oneof!`, regex string strategies, `prop::collection`,
//! `prop_recursive`, …) but with a much simpler engine — plain random
//! sampling with a deterministic per-test seed, and **no shrinking**.
//! A failing case reports its case number and seed so it can be
//! re-run. See `vendor/stubs/README.md`.

pub mod regex;

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---- deterministic RNG ---------------------------------------------

/// SplitMix64: tiny, deterministic, good-enough mixing for test-case
/// generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; n must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---- config --------------------------------------------------------

/// Subset of proptest's config: only `cases` matters here. The
/// `PROPTEST_CASES` environment variable overrides it, as upstream.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; the stand-in trades volume for
        // wall-clock in offline CI. Override with PROPTEST_CASES.
        ProptestConfig { cases: 32 }
    }
}

// ---- the Strategy trait --------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Iterated recursion: applies `recurse` `depth` times over the
    /// leaf strategy. Each level decides how much of the inner level
    /// to embed (e.g. via `prop::collection::vec(inner, 0..k)`), so
    /// generated structures are bounded by `depth`. The `_desired_size`
    /// and `_expected_branch_size` tuning knobs are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.sample(rng)))
    }
}

/// Type-erased strategy (cheap to clone; shares the underlying recipe).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice between heterogeneous strategies with one value type
/// (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Regex string strategies: `"[a-z]{1,8}"` is a `Strategy<Value = String>`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        regex::Pattern::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

// ---- numeric range strategies --------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $ty) * (hi - lo)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        char::from_u32(lo + rng.below((hi - lo) as usize) as u32).unwrap_or(self.start)
    }
}

impl Strategy for RangeInclusive<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (*self.start() as u32, *self.end() as u32);
        assert!(lo <= hi, "empty range strategy");
        char::from_u32(lo + rng.below((hi - lo + 1) as usize) as u32).unwrap_or(*self.start())
    }
}

// ---- tuple strategies ----------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

// ---- any::<T>() ----------------------------------------------------

/// Types with a canonical whole-domain strategy. Integer and float
/// strategies are biased toward boundary values (zero, one, MAX, NaN,
/// infinities), which is where the interesting bugs live.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<A>(std::marker::PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The strategy for any supported type's full domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // 1-in-4: boundary values.
                if rng.below(4) == 0 {
                    match rng.below(4) {
                        0 => 0 as $ty,
                        1 => 1 as $ty,
                        2 => <$ty>::MAX,
                        _ => <$ty>::MIN,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.below(4) == 0 {
            const SPECIAL: [f64; 8] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                1.0,
                f64::MAX,
                f64::MIN_POSITIVE,
            ];
            SPECIAL[rng.below(SPECIAL.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(33);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

// ---- collection / option modules -----------------------------------

/// Element-count specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi_inclusive - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bounded retries to approach
            // the target size.
            for _ in 0..target * 3 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// `BTreeSet` with about `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3-in-4 Some, mirroring upstream's Some-heavy default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `Option` wrapper strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

// Longhand module paths, mirroring upstream's layout.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, OneOf, Strategy};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---- macros --------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

/// `prop_compose! { fn name(args)(field in strat, ...) -> Ret { body } }`
/// expands to `fn name(args) -> impl Strategy<Value = Ret>`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident $params:tt
        ($($field:ident in $strat:expr),+ $(,)?)
        -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name $params -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)+),
                move |($($field,)+)| $body,
            )
        }
    };
}

/// The test harness macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs. No shrinking: a
/// failure reports the case number and seed for reproduction.
#[macro_export]
macro_rules! proptest {
    // Internal: no test functions left.
    (@funcs ($cfg:expr)) => {};
    // Internal: one test function, then recurse on the rest.
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))));
            for case in 0..cases {
                let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15));
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = run {
                    eprintln!(
                        "proptest {}: case {case}/{cases} failed (seed {seed}; re-run with PROPTEST_SEED={seed})",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

// ---- self-tests ----------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 10u32..20) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..100, (a, b) in (0i32..5, 5i32..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < b, "a={a} b={b}");
        }

        #[test]
        fn composed_pairs_ordered(pair in arb_pair()) {
            prop_assert!(pair.0 < pair.1);
        }

        #[test]
        fn oneof_and_collections(
            words in prop::collection::vec(
                prop_oneof![Just("x".to_string()), "[a-c]{2,4}"],
                1..8,
            ),
            set in prop::collection::btree_set(any::<u8>(), 0..6),
            opt in prop::option::of(0u8..4),
        ) {
            prop_assert!(!words.is_empty() && words.len() < 8);
            for w in &words {
                prop_assert!(w == "x" || (2..=4).contains(&w.len()));
            }
            prop_assert!(set.len() <= 6);
            if let Some(v) = opt {
                prop_assert!(v < 4);
            }
        }

        #[test]
        fn any_hits_extremes_eventually(v in any::<u64>(), f in any::<f64>()) {
            let _ = (v, f); // just exercising generation
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::new(42);
        for _ in 0..200 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }
}
