//! Offline stand-in for `rand` 0.8, covering the subset this workspace
//! uses: `Rng::{gen, gen_bool, gen_range}`, `SeedableRng`,
//! `rngs::{StdRng, SmallRng}`, `seq::SliceRandom`, and `thread_rng`.
//! Both named generators are the same xoshiro256**-style PRNG, seeded
//! deterministically via SplitMix64 — statistically strong enough for
//! the synthetic-population generation this workspace does, but NOT a
//! drop-in reproduction of real rand's stream (worlds generated under
//! the stub differ from worlds generated under real rand for the same
//! seed). See `vendor/stubs/README.md`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// Sample a value uniformly: `f64`/`f32` in `[0, 1)`, integers and
    /// `bool` over their whole range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0,1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }

    /// Uniform sample from a `start..end` or `start..=end` range.
    /// Panics on empty ranges, like real rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution of `Rng::gen` for each supported output type.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$ty as Standard>::sample_standard(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let unit = <$ty as Standard>::sample_standard(rng);
                    start + unit * (end - start)
                }
            }
        )*
    };
}

sample_range_float!(f32, f64);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        // No OS entropy in the offline sandbox: derive from the clock,
        // which is all `thread_rng` freshness needs here.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**-style generator used for both `StdRng` and `SmallRng`.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Xoshiro256 {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s.iter().all(|&x| x == 0) {
            s = [0x9e3779b97f4a7c15, 1, 2, 3]; // the all-zero state is a fixed point
        }
        Xoshiro256 { s }
    }
}

pub mod rngs {
    pub type StdRng = super::Xoshiro256;
    pub type SmallRng = super::Xoshiro256;

    /// Thread-local generator handle.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) super::Xoshiro256);

    impl super::RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Fresh, time-seeded generator (no thread-local caching; callers in
/// this workspace hold on to the returned value).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(SeedableRng::from_entropy())
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
