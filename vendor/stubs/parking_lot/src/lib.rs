//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! API-compatible with the subset this workspace uses: `Mutex::lock`,
//! `RwLock::{read, write}` — infallible (poison is unwrapped, matching
//! parking_lot's no-poisoning semantics). See `vendor/stubs/README.md`.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed; lock never returns Err).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock (std-backed; acquisition never returns Err).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> RwLock<T> {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
