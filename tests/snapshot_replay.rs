//! Offline replay: a captured crawl snapshot must reproduce the same
//! discovery as the live crawl — the paper's crawl-once / analyze-
//! offline workflow.

use hs_profiler::core::{run_basic, AttackConfig};
use hs_profiler::crawler::{CrawlSnapshot, Crawler, SnapshotAccess};
use hs_profiler::http::DirectExchange;
use hs_profiler::platform::{Platform, PlatformConfig};
use hs_profiler::policy::FacebookPolicy;
use hs_profiler::synth::{generate, ScenarioConfig};
use std::sync::Arc;

#[test]
fn offline_replay_reproduces_live_discovery() {
    let scenario = generate(&ScenarioConfig::tiny());
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler = platform.into_handler();
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );

    // Live run.
    let exchanges: Vec<DirectExchange> =
        (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
    let mut live = Crawler::new(exchanges, "snap").unwrap();
    let live_discovery = run_basic(&mut live, &config).unwrap();

    // Capture through a second crawler with the same account layout (a
    // fresh platform instance so account indices match).
    let platform2 = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler2 = platform2.into_handler();
    let exchanges: Vec<DirectExchange> =
        (0..2).map(|_| DirectExchange::new(handler2.clone())).collect();
    let mut capture_crawler = Crawler::new(exchanges, "snap").unwrap();
    let snapshot = CrawlSnapshot::capture(&mut capture_crawler, scenario.school, &[]).unwrap();
    assert!(snapshot.effort.total() > 0);

    // JSON round trip, then replay the methodology offline.
    let restored = CrawlSnapshot::from_json(&snapshot.to_json().unwrap()).unwrap();
    let mut offline = SnapshotAccess::new(restored);
    let offline_discovery = run_basic(&mut offline, &config).unwrap();

    assert_eq!(offline_discovery.seeds, live_discovery.seeds);
    assert_eq!(offline_discovery.claiming, live_discovery.claiming);
    assert_eq!(offline_discovery.core.len(), live_discovery.core.len());
    let key = |d: &hs_profiler::core::Discovery| {
        d.ranked.iter().map(|c| (c.id, c.core_friends_by_class)).collect::<Vec<_>>()
    };
    assert_eq!(key(&offline_discovery), key(&live_discovery));
    // Replay cost nothing.
    assert_eq!(offline.original_effort().total(), snapshot.effort.total());
}
