//! End-to-end tests for the five-way 429/503 refusal-provenance
//! taxonomy over real loopback TCP: each refusal source — the server's
//! edge token bucket, the chaos fault engine, the sybil detector's
//! throttle, connection-level load shedding, and account suspension —
//! emits its own marker header, and the crawler ledgers each one
//! distinctly in `crawler_refusals_total{source=…}`. On top of the
//! ledgers, the trace-forensics audit must close: every refusal the
//! wire carried is explained by exactly one traced cause.

use hs_profiler::crawler::OsnAccess;
use hs_profiler::experiments::runner::{full_attack_with, Lab};
use hs_profiler::experiments::trace_audit::audit_trace;
use hs_profiler::graph::UserId;
use hs_profiler::http::{ChaosPlan, RateLimit, ServerConfig};
use hs_profiler::platform::{DefenseConfig, DetectorStrength, FaultPlan, PlatformConfig};
use hs_profiler::synth::ScenarioConfig;
use std::net::TcpStream;
use std::time::Duration;

/// Lane capacity generous enough that no TCP run overflows the ring —
/// a dropped span would void the audit (and should fail the test).
const TRACE_CAP: usize = 1 << 15;

fn ledger(lab: &Lab, source: &str) -> u64 {
    lab.obs.snapshot().counter(&format!("crawler_refusals_total{{source=\"{source}\"}}"))
}

fn assert_only(lab: &Lab, expected: &[&str]) {
    for src in ["edge", "fault", "throttle", "shed", "suspension"] {
        if expected.contains(&src) {
            assert!(ledger(lab, src) > 0, "expected {src} refusals in the ledger");
        } else {
            assert_eq!(ledger(lab, src), 0, "unexpected {src} refusals in the ledger");
        }
    }
}

/// A hot crawl into a tight edge token bucket: every refusal the
/// crawler absorbs is a 429 + `x-edge-limited` from the server's edge,
/// ledgered as `edge` and nothing else.
#[test]
fn edge_limiter_refusals_are_ledgered_as_edge() {
    let mut lab = Lab::facebook(&ScenarioConfig::tiny());
    lab.obs.enable_tracing(TRACE_CAP);
    lab.serve_hardened(ServerConfig {
        rate_limit: Some(RateLimit { burst: 24, per_sec: 400.0 }),
        ..ServerConfig::default()
    })
    .expect("serve");
    let (mut crawler, _chaos, _retry) = lab.tcp_chaos_crawler(2, "edge", 5, &ChaosPlan::default());
    let config = lab.attack_config();
    let seeds = crawler.collect_seeds(config.school).expect("seeds");
    for &uid in seeds.iter().take(120) {
        let _ = crawler.profile(uid);
    }
    lab.stop_serving();

    assert_only(&lab, &["edge"]);
    let audit = audit_trace(&lab.obs, &crawler.effort());
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
    let edge = audit.refusals.iter().find(|r| r.source == "edge").unwrap();
    // Both ends of the wire agree: what the crawler absorbed is what
    // the edge refused.
    assert!(edge.traced_crawler > 0 && edge.traced_platform > 0);
}

/// Chaos-injected 429s (`x-fault-injected`) and a scripted account
/// suspension (`x-account-suspended`) land in their own ledger rows —
/// never conflated with each other or with edge/throttle refusals.
#[test]
fn fault_and_suspension_refusals_are_ledgered_distinctly() {
    let plan = FaultPlan {
        enabled: true,
        rate_limit_per_mille: 60,
        retry_after_secs: 1,
        // Low enough that account 0 trips it during the profile sweep
        // even on the tiny scenario's short seed list.
        suspend_account_after: vec![12],
        ..FaultPlan::default()
    };
    let mut lab = Lab::facebook_configured(
        &ScenarioConfig::tiny(),
        PlatformConfig { faults: plan, ..PlatformConfig::default() },
    );
    lab.obs.enable_tracing(TRACE_CAP);
    lab.serve().expect("serve");
    let (mut crawler, _chaos, _retry) = lab.tcp_chaos_crawler(2, "fault", 9, &ChaosPlan::default());
    let config = lab.attack_config();
    let seeds = crawler.collect_seeds(config.school).expect("seeds");
    for &uid in seeds.iter().take(120) {
        let _ = crawler.profile(uid);
    }
    lab.stop_serving();

    assert_only(&lab, &["fault", "suspension"]);
    let snap = lab.obs.snapshot();
    assert_eq!(
        ledger(&lab, "suspension"),
        snap.counter("crawler_account_suspensions_total"),
        "suspensions are ledgered once per account"
    );
    let audit = audit_trace(&lab.obs, &crawler.effort());
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
}

/// A Medium-strength sybil detector escalates the fleet to its
/// throttle tier: 429 + `x-throttled` refusals ledgered as `throttle`,
/// with CAPTCHA interstitials billed as time rather than refusals.
#[test]
fn detector_throttle_refusals_are_ledgered_as_throttle() {
    let mut lab = Lab::facebook_defended(
        &ScenarioConfig::tiny(),
        DefenseConfig { strength: DetectorStrength::Medium, ..DefenseConfig::default() },
    );
    lab.obs.enable_tracing(TRACE_CAP);
    lab.serve().expect("serve");
    let (crawler, _chaos, _retry) = lab.tcp_chaos_crawler(2, "throttle", 13, &ChaosPlan::default());
    let run = full_attack_with(&lab, Box::new(crawler));
    lab.stop_serving();

    assert_only(&lab, &["throttle"]);
    assert!(run.effort_total.captcha_challenges > 0, "medium tier should issue captchas");
    let audit = audit_trace(&lab.obs, &run.effort_total);
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
}

/// Connection-level load shedding (`503` + `Retry-After` before any
/// handler runs): saturate the admitted-connection cap with idle
/// connections, force the crawler onto a fresh connection, and every
/// response it sees is a shed — ledgered as `shed` and nothing else.
#[test]
fn connection_sheds_are_ledgered_as_shed() {
    let mut lab = Lab::facebook(&ScenarioConfig::tiny());
    lab.obs.enable_tracing(TRACE_CAP);
    let addr = lab
        .serve_hardened(ServerConfig {
            workers: 2,
            queue_depth: 2,
            max_connections: 2,
            // Short enough to reap the crawler's keep-alive connection
            // below; long enough that the saturating connections live
            // through the shed burst.
            idle_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        })
        .expect("serve");
    let (mut crawler, _chaos, _retry) = lab.tcp_chaos_crawler(1, "shed", 17, &ChaosPlan::default());

    // Let the server reap the crawler's idle keep-alive connection, so
    // its next request has to reconnect — and meet a full house.
    std::thread::sleep(Duration::from_millis(450));
    let _hold0 = TcpStream::connect(addr).expect("saturating connection");
    let _hold1 = TcpStream::connect(addr).expect("saturating connection");

    // Every reconnect attempt is shed; the fetch eventually gives up
    // (or squeezes through once the reaper frees a slot — either way
    // the sheds are ledgered).
    let _ = crawler.profile(UserId(1));
    drop((_hold0, _hold1));
    lab.stop_serving();

    assert_only(&lab, &["shed"]);
    let audit = audit_trace(&lab.obs, &crawler.effort());
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
}
