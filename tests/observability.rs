//! Cross-crate integration: run the paper's attack over real loopback
//! TCP and verify the shared registry observed it — route counters
//! advanced, latency quantiles exist, the snapshot survives a JSON
//! round trip — while the admin endpoints stay off the attacker's
//! books (no Effort movement, no per-account request accounting).

use hs_profiler::experiments::runner::{full_attack, Lab};
use hs_profiler::http::Client;
use hs_profiler::synth::ScenarioConfig;

/// Pull the sample value for an exact metric key out of Prometheus text.
fn sample(text: &str, key: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(key) && l[key.len()..].starts_with(' '))
        .and_then(|l| l[key.len() + 1..].trim().parse().ok())
}

#[test]
fn tcp_attack_is_visible_in_metrics_and_admin_routes_are_free() {
    let mut lab = Lab::facebook(&ScenarioConfig::tiny());
    let addr = lab.serve().expect("bind loopback server");
    let run = full_attack(&mut lab, true);
    let effort_after_attack = run.access.effort();
    assert!(effort_after_attack.total() > 0, "attack issued no requests");

    let mut admin = Client::new(addr);
    let metrics = admin.get("/__metrics").expect("GET /__metrics");
    let text = metrics.body_string();

    // The crawl must have left non-zero counters on the routes the
    // paper's methodology hits, with latency summaries alongside.
    for route in ["/profile/:uid", "/friends/:uid", "/find-friends"] {
        let key = format!("http_route_requests_total{{route=\"{route}\"}}");
        let hits = sample(&text, &key).unwrap_or_else(|| panic!("missing {key} in:\n{text}"));
        assert!(hits > 0.0, "{key} is zero");
        let count_key = format!("http_route_latency_us_count{{route=\"{route}\"}}");
        assert_eq!(sample(&text, &count_key), Some(hits), "latency count != hits for {route}");
        for q in ["0.5", "0.95", "0.99"] {
            let qkey = format!("http_route_latency_us{{route=\"{route}\",quantile=\"{q}\"}}");
            assert!(sample(&text, &qkey).is_some(), "missing {qkey}");
        }
    }
    // Transport-level accounting saw the same traffic.
    assert!(sample(&text, "http_server_requests_total").unwrap_or(0.0) > 0.0);
    // Attacker-side accounting agrees with the crawler's own Effort.
    let fetched_profiles =
        sample(&text, "crawler_fetch_total{endpoint=\"profile\"}").unwrap_or(0.0);
    assert_eq!(fetched_profiles as u64, effort_after_attack.profile_requests);

    let status = admin.get("/__status").expect("GET /__status");
    let v: serde_json::Value = serde_json::from_str(&status.body_string()).expect("status JSON");
    assert!(v.get("uptime_ms").and_then(|u| u.as_u64()).is_some());
    let routes = v.get("routes").and_then(|r| r.as_array()).expect("routes table");
    assert!(!routes.is_empty());
    let registered = v
        .get("accounts")
        .and_then(|a| a.get("registered"))
        .and_then(|n| n.as_u64())
        .expect("accounts.registered");
    assert!(registered >= run.effort_total.auth_requests / 2, "fake accounts not counted");

    // Admin traffic is free: hammering the endpoints moves neither the
    // crawler's Effort nor the platform's per-account request counters.
    let served_before: Vec<u64> = (0..lab.platform.accounts.account_count())
        .map(|i| lab.platform.accounts.request_count(i))
        .collect();
    for _ in 0..5 {
        admin.get("/__metrics").expect("GET /__metrics");
        admin.get("/__status").expect("GET /__status");
    }
    assert_eq!(run.access.effort(), effort_after_attack);
    let served_after: Vec<u64> = (0..lab.platform.accounts.account_count())
        .map(|i| lab.platform.accounts.request_count(i))
        .collect();
    assert_eq!(served_before, served_after, "admin hits billed to accounts");
    let text = admin.get("/__metrics").unwrap().body_string();
    assert!(!text.contains("route=\"/__metrics\""), "admin route was instrumented");
    assert!(!text.contains("route=\"/__status\""), "admin route was instrumented");
}

#[test]
fn metrics_snapshot_round_trips_through_serde_json() {
    let mut lab = Lab::facebook(&ScenarioConfig::tiny());
    let _run = full_attack(&mut lab, false);
    let snap = lab.obs.snapshot();
    assert!(!snap.counters.is_empty() && !snap.histograms.is_empty());
    let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
    let back: hs_profiler::obs::Snapshot = serde_json::from_str(&json).expect("parse snapshot");
    assert_eq!(back.counters, snap.counters);
    assert_eq!(back.gauges, snap.gauges);
    assert_eq!(
        back.histograms.get("experiment_phase_us{phase=\"crawl\"}").map(|h| h.count),
        snap.histograms.get("experiment_phase_us{phase=\"crawl\"}").map(|h| h.count),
    );
}
