//! Cross-crate integration: the attack must produce byte-identical
//! results whether it crawls in-process or over real loopback TCP —
//! i.e. the HTTP layer is a faithful transport, not part of the model.

use hs_profiler::core::{run_basic, AttackConfig};
use hs_profiler::crawler::{Crawler, OsnAccess};
use hs_profiler::http::{Client, DirectExchange, Server};
use hs_profiler::platform::{Platform, PlatformConfig};
use hs_profiler::policy::FacebookPolicy;
use hs_profiler::synth::{generate, ScenarioConfig};
use std::sync::Arc;

#[test]
fn direct_and_tcp_attacks_agree_exactly() {
    let scenario = generate(&ScenarioConfig::tiny());
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler = platform.into_handler();
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );

    // In-process run (accounts get platform indices 0, 1).
    let exchanges: Vec<DirectExchange> =
        (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
    let mut direct = Crawler::new(exchanges, "direct").unwrap();
    let d1 = run_basic(&mut direct, &config).unwrap();

    // TCP run against the same platform (accounts 2, 3 — but the search
    // shard layout depends on account index, so serve a *fresh* platform
    // over the same immutable network for a fair comparison).
    let platform2 = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let server = Server::start(platform2.into_handler()).unwrap();
    let clients: Vec<Client> = (0..2).map(|_| Client::new(server.addr())).collect();
    let mut tcp = Crawler::new(clients, "tcp").unwrap();
    let d2 = run_basic(&mut tcp, &config).unwrap();

    assert_eq!(d1.seeds, d2.seeds, "seed sets differ across transports");
    assert_eq!(d1.claiming, d2.claiming);
    assert_eq!(d1.core.len(), d2.core.len());
    for (a, b) in d1.core.iter().zip(&d2.core) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.grad_year, b.grad_year);
        assert_eq!(a.friends, b.friends);
    }
    let r1: Vec<_> = d1.ranked.iter().map(|c| (c.id, c.core_friends_by_class)).collect();
    let r2: Vec<_> = d2.ranked.iter().map(|c| (c.id, c.core_friends_by_class)).collect();
    assert_eq!(r1, r2, "rankings differ across transports");

    // Identical page fetches => identical effort counts.
    assert_eq!(direct.effort(), tcp.effort());
    server.shutdown();
}

#[test]
fn attack_is_deterministic_across_repeat_runs() {
    let run = || {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges: Vec<DirectExchange> =
            (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
        let mut crawler = Crawler::new(exchanges, "det").unwrap();
        let config = AttackConfig::new(
            scenario.school,
            scenario.network.senior_class_year(),
            scenario.config.public_enrollment_estimate,
        );
        let d = run_basic(&mut crawler, &config).unwrap();
        let guessed = d.guessed_students(100);
        (d.seeds, guessed, crawler.effort())
    };
    assert_eq!(run(), run());
}
