//! Acceptance tests for the parallel crawl scheduler's determinism
//! contract: worker count is a pure throughput knob. One worker and
//! eight workers — same accounts, same seed, same chaotic fault plan —
//! must produce bit-identical findings, request-for-request identical
//! effort, identical evaluation output, and identical checkpoints.
//!
//! Plus the effort-accounting audit: on a fault-free platform, the
//! `Effort` buckets aggregated across all account workers must exactly
//! match both the crawler's own fetch telemetry and the *platform-side*
//! served-request counters — nothing double-counted, nothing lost in
//! the fan-out/merge.

use hs_profiler::core::{evaluate, EvalPoint};
use hs_profiler::experiments::runner::{full_attack_with, AttackRun, Lab};
use hs_profiler::experiments::trace_audit::audit_trace;
use hs_profiler::platform::{DefenseConfig, DetectorStrength, FaultPlan, PlatformConfig};
use hs_profiler::synth::ScenarioConfig;

const SEED: u64 = 0x9d5f_2013;
/// Flight-recorder lane capacity ample enough that a tiny chaotic
/// attack never overflows — a dropped span would (rightly) fail the
/// digest comparison.
const TRACE_CAP: usize = 32_768;

fn parallel_attack(workers: usize) -> (Lab, AttackRun) {
    let lab = Lab::facebook_chaotic(&ScenarioConfig::tiny(), FaultPlan::chaos());
    lab.obs.enable_tracing(TRACE_CAP);
    let access = Box::new(lab.parallel_crawler(2, workers, "atk", SEED));
    let run = full_attack_with(&lab, access);
    (lab, run)
}

fn table4(lab: &Lab, run: &AttackRun) -> EvalPoint {
    let truth = lab.ground_truth();
    let t = run.config.school_size_estimate as usize;
    evaluate(
        t,
        &run.enhanced.guessed_students(t),
        |u| run.enhanced.inferred_year(u, &run.config),
        &truth,
    )
}

#[test]
fn worker_count_never_changes_the_attack() {
    let (lab1, one) = parallel_attack(1);
    let (lab8, eight) = parallel_attack(8);
    let t = one.config.school_size_estimate as usize;

    // Findings are bit-identical.
    assert_eq!(one.discovery.seeds, eight.discovery.seeds);
    assert_eq!(one.discovery.claiming, eight.discovery.claiming);
    let core1: Vec<_> = one.discovery.core.iter().map(|c| (c.id, c.grad_year)).collect();
    let core8: Vec<_> = eight.discovery.core.iter().map(|c| (c.id, c.grad_year)).collect();
    assert_eq!(core1, core8);
    assert_eq!(one.enhanced.guessed_students(t), eight.enhanced.guessed_students(t));

    // Cost is request-for-request identical, not merely similar.
    assert_eq!(one.effort_total, eight.effort_total);

    // Evaluation output (the numbers the tables are built from).
    assert_eq!(table4(&lab1, &one), table4(&lab8, &eight));

    // Checkpoints replay identically: a crawl interrupted on an
    // 8-worker box resumes exactly on a 1-worker box.
    assert_eq!(
        one.access.checkpoint().to_json().unwrap(),
        eight.access.checkpoint().to_json().unwrap()
    );

    // The modeled makespan is the one thing workers MAY change — and
    // only downward: more lanes never cost virtual time.
    assert!(eight.access.virtual_elapsed_ms() <= one.access.virtual_elapsed_ms());

    // And the chaos actually happened — this was not a fault-free walk.
    assert!(one.effort_total.retry_requests > 0, "chaos should force retries");

    // The flight recorder saw the same causal history: span ids are
    // derived, ordinals are per-lane, so the canonical trace digest is
    // bit-identical at any worker count.
    assert!(!lab1.obs.tracer().is_empty(), "chaotic attack must leave a trace");
    assert_eq!(lab1.obs.tracer().dropped(), 0, "digest comparison needs a lossless ring");
    assert_eq!(lab1.obs.tracer().digest(), lab8.obs.tracer().digest());

    // And the forensics pass reconstructs the 8-worker run completely:
    // every retry and refusal the fan-out absorbed has a traced cause.
    let audit = audit_trace(&lab8.obs, &eight.effort_total);
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
}

/// One defended + chaotic parallel attack, reduced to everything that
/// must be invariant across worker counts: the checkpoint, the effort
/// ledger (captchas and throttle retries included), the detector's
/// *own* internal state digest (per-session features, scores, ladder
/// positions), the flight recorder's canonical trace digest, and the
/// Table-4 numbers.
type DefendedFingerprint = (String, hs_profiler::crawler::Effort, u64, u64, EvalPoint);

fn defended_attack(workers: usize, strength: DetectorStrength) -> DefendedFingerprint {
    let lab = Lab::facebook_configured(
        &ScenarioConfig::tiny(),
        PlatformConfig {
            faults: FaultPlan::chaos(),
            defense: DefenseConfig { strength, ..DefenseConfig::default() },
            ..PlatformConfig::default()
        },
    );
    lab.obs.enable_tracing(TRACE_CAP);
    let access = Box::new(lab.parallel_crawler(2, workers, "atk", SEED));
    let run = full_attack_with(&lab, access);
    let digest = lab.platform.defense.state_digest();
    assert_eq!(lab.obs.tracer().dropped(), 0, "digest comparison needs a lossless ring");
    (
        run.access.checkpoint().to_json().unwrap(),
        run.effort_total,
        digest,
        lab.obs.tracer().digest(),
        table4(&lab, &run),
    )
}

fn defended_reference(strength: DetectorStrength) -> &'static DefendedFingerprint {
    use std::sync::OnceLock;
    static LOW: OnceLock<DefendedFingerprint> = OnceLock::new();
    static MEDIUM: OnceLock<DefendedFingerprint> = OnceLock::new();
    let cell = match strength {
        DetectorStrength::Low => &LOW,
        DetectorStrength::Medium => &MEDIUM,
        _ => panic!("reference cached for Low/Medium only"),
    };
    cell.get_or_init(|| defended_attack(1, strength))
}

proptest::proptest! {
    // Every case is a full (tiny) chaotic crawl; keep the count small.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

    /// The detector observes, scores and escalates per *session*, in
    /// each session's own request order — so its feature extraction and
    /// verdict stream must be bit-identical at any worker count, even
    /// with `FaultPlan::chaos()` mangling the traffic underneath.
    #[test]
    fn detector_state_is_bit_identical_across_worker_counts(
        workers in 2usize..=8,
        tier in 0usize..=1,
    ) {
        let strength = [DetectorStrength::Low, DetectorStrength::Medium][tier];
        let reference = defended_reference(strength);
        let run = defended_attack(workers, strength);
        proptest::prop_assert_eq!(&run, reference);
    }
}

/// The live-world fingerprint: everything that must be invariant when
/// the platform *mutates underneath* a chaotic, defended, parallel
/// crawl — the checkpoint, the effort ledger (stale re-fetch and
/// tombstone annotations included), the mutation engine's state digest
/// (applied events + per-generation serve tallies), the detector state
/// digest, the trace digest, and the Table-4 numbers.
type LiveFingerprint = (String, hs_profiler::crawler::Effort, u64, u64, u64, EvalPoint);

fn live_attack(workers: usize) -> LiveFingerprint {
    let cfg = ScenarioConfig::tiny();
    let lab = Lab::facebook_configured(
        &cfg,
        PlatformConfig {
            faults: FaultPlan::chaos(),
            defense: DefenseConfig {
                strength: DetectorStrength::Medium,
                ..DefenseConfig::default()
            },
            mutations: Lab::churn_plan(&cfg, 16.0),
            ..PlatformConfig::default()
        },
    );
    lab.obs.enable_tracing(TRACE_CAP);
    let access = Box::new(lab.parallel_crawler(2, workers, "atk", SEED));
    let run = full_attack_with(&lab, access);
    assert_eq!(lab.obs.tracer().dropped(), 0, "digest comparison needs a lossless ring");
    // Non-vacuity: the world genuinely churned while the crawl ran, and
    // the forensics pass still closes over chaos + detector + mutations.
    assert!(lab.platform.mutations.applied_count() > 0, "live world never mutated mid-crawl");
    let audit = audit_trace(&lab.obs, &run.effort_total);
    assert!(audit.closed(), "unexplained: {:#?}", audit.unexplained);
    (
        run.access.checkpoint().to_json().unwrap(),
        run.effort_total,
        lab.platform.mutations.state_digest(),
        lab.platform.defense.state_digest(),
        lab.obs.tracer().digest(),
        table4(&lab, &run),
    )
}

fn live_reference() -> &'static LiveFingerprint {
    use std::sync::OnceLock;
    static REF: OnceLock<LiveFingerprint> = OnceLock::new();
    REF.get_or_init(|| live_attack(1))
}

proptest::proptest! {
    // Each case is a full chaotic live-world crawl; keep the count small.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

    /// Request-carried virtual time makes the mutation schedule a pure
    /// function of the per-account request streams, so even with the
    /// world churning (x16), chaos mangling the wire and the Medium
    /// detector escalating, every digest is bit-identical at any worker
    /// count.
    #[test]
    fn live_world_attack_is_bit_identical_across_worker_counts(workers in 2usize..=8) {
        let reference = live_reference();
        let run = live_attack(workers);
        proptest::prop_assert_eq!(&run, reference);
    }
}

/// The property above must not hold vacuously: under the parallel
/// crawler every seat keeps its own clock, the platform clock never
/// advances, and the all-zero timing gaps read as a maximally
/// machine-like signature — Medium must actually flag the fleet.
#[test]
fn defended_chaotic_parallel_run_engages_the_detector() {
    let (_, effort, digest, _, _) = defended_reference(DetectorStrength::Medium).clone();
    assert_ne!(digest, 0, "detector saw no sessions");
    assert!(effort.captcha_challenges > 0, "medium tier should be issuing captchas");
    let (off_ckpt, off_effort, off_digest, _, off_eval) = defended_attack(1, DetectorStrength::Off);
    assert_ne!(digest, off_digest, "a defended run must accumulate per-session state");
    // And the defense's costs are visible in the ledger: same attack,
    // same chaos, but the defended run works harder.
    assert!(effort.captcha_virtual_ms > 0);
    assert_eq!(off_effort.captcha_challenges, 0);
    // The attack still lands either way (the detector raises cost, it
    // does not undo the paper's result on these tiers).
    let (_, _, _, _, eval) = defended_reference(DetectorStrength::Medium);
    assert!(eval.found > 0 && off_eval.found > 0);
    assert!(!off_ckpt.is_empty());
}

#[test]
fn parallel_effort_matches_platform_served_requests() {
    let lab = Lab::facebook(&ScenarioConfig::tiny());
    let access = Box::new(lab.parallel_crawler(2, 4, "atk", SEED));
    let run = full_attack_with(&lab, access);
    let snap = lab.obs.snapshot();
    let effort = run.effort_total;
    let fetch = |e: &str| snap.counter(&format!("crawler_fetch_total{{endpoint=\"{e}\"}}"));
    let route = |r: &str| snap.counter(&format!("http_route_requests_total{{route=\"{r}\"}}"));

    // Crawler-side telemetry agrees with the Effort buckets summed
    // across every account worker.
    assert_eq!(effort.auth_requests, fetch("auth"));
    assert_eq!(effort.seed_requests, fetch("find-friends"));
    assert_eq!(effort.profile_requests, fetch("profile"));
    assert_eq!(effort.friend_list_requests, fetch("friends") + fetch("circles"));
    assert_eq!(effort.message_requests, fetch("message"));

    // Fault-free run: no retries, so every fetch the crawler billed is
    // a request the platform served, and vice versa.
    assert_eq!(effort.retry_requests, 0);
    assert_eq!(effort.auth_requests, route("/signup") + route("/login"));
    assert_eq!(effort.seed_requests, route("/find-friends") + route("/graph-search"));
    assert_eq!(effort.profile_requests, route("/profile/:uid"));
    assert_eq!(effort.friend_list_requests, route("/friends/:uid") + route("/circles/:uid"));
    assert_eq!(effort.message_requests, route("/message/:uid"));
    assert!(effort.total() > 0, "the attack did real work");
}
