//! Integration-level checks of the paper's load-bearing claims, run
//! against the full stack (generator → platform → crawler → inference).

use hs_profiler::core::{run_basic, AttackConfig, GroundTruth};
use hs_profiler::crawler::{Crawler, OsnAccess};
use hs_profiler::http::DirectExchange;
use hs_profiler::platform::{Platform, PlatformConfig};
use hs_profiler::policy::{facebook_matrix, googleplus_matrix, FacebookPolicy, InfoRow};
use hs_profiler::synth::{generate, Scenario, ScenarioConfig};
use std::sync::Arc;

fn attack(scenario: &Scenario, accounts: usize) -> (Crawler<DirectExchange>, AttackConfig) {
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig::default(),
    );
    let handler = platform.into_handler();
    let exchanges = (0..accounts).map(|_| DirectExchange::new(handler.clone())).collect();
    let crawler = Crawler::new(exchanges, "inv").unwrap();
    let config = AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    );
    (crawler, config)
}

/// Table 1's checkmark pattern, regenerated from the policy engine.
#[test]
fn table1_checkmarks_match_paper() {
    let m = facebook_matrix();
    // (row, [def-minor, def-adult, worst-minor, worst-adult])
    let expected = [
        (InfoRow::NameGenderNetworksPhoto, [true, true, true, true]),
        (InfoRow::HighSchool, [false, true, false, true]),
        (InfoRow::Relationship, [false, true, false, true]),
        (InfoRow::InterestedIn, [false, true, false, true]),
        (InfoRow::Birthday, [false, false, false, true]),
        (InfoRow::Hometown, [false, true, false, true]),
        (InfoRow::CurrentCity, [false, true, false, true]),
        (InfoRow::FriendList, [false, true, false, true]),
        (InfoRow::Photos, [false, true, false, true]),
        (InfoRow::ContactInfo, [false, false, false, true]),
        (InfoRow::PublicSearch, [false, true, false, true]),
    ];
    for (row, cells) in expected {
        for (col, want) in cells.into_iter().enumerate() {
            assert_eq!(m.cell(row, col), want, "{row:?} column {col}");
        }
    }
}

/// Table 6: Google+ protects minors by defaults, not caps.
#[test]
fn table6_gplus_has_no_hard_cap() {
    let m = googleplus_matrix();
    const WORST_MINOR: usize = 2;
    for row in [InfoRow::HighSchool, InfoRow::Birthday, InfoRow::ContactInfo, InfoRow::Photos] {
        assert!(m.cell(row, WORST_MINOR), "{row:?} should leak for a worst-case G+ minor");
    }
    // But search still excludes registered minors.
    assert!(!m.cell(InfoRow::PublicSearch, WORST_MINOR));
}

/// §3.1: everything the crawler ever receives about a registered minor
/// is minimal — verified over every registered-minor student page.
#[test]
fn crawler_never_sees_nonminimal_registered_minor() {
    let scenario = generate(&ScenarioConfig::tiny());
    let (mut crawler, _) = attack(&scenario, 1);
    for u in scenario.registered_minor_students() {
        let p = crawler.profile(u).unwrap();
        assert!(p.is_minimal(), "registered minor {u} leaked: {p:?}");
        assert!(crawler.friends(u).unwrap().is_none());
    }
}

/// §4.1: the core set really is dominated by minors who lied about
/// their age — the causal mechanism of the whole paper.
#[test]
fn core_is_mostly_lying_minors() {
    let scenario = generate(&ScenarioConfig::tiny());
    let (mut crawler, config) = attack(&scenario, 2);
    let d = run_basic(&mut crawler, &config).unwrap();
    assert!(!d.core.is_empty());
    let today = scenario.network.today;
    let student_cores = d.core.iter().filter(|c| scenario.is_student(c.id)).count();
    let lying_cores = d
        .core
        .iter()
        .filter(|c| scenario.network.user(c.id).is_minor_registered_as_adult(today))
        .count();
    // Every student core must be a registered adult (search excludes
    // registered minors); most of those are lying minors rather than
    // genuinely-18 seniors.
    for c in &d.core {
        assert!(!scenario.network.user(c.id).is_registered_minor(today));
    }
    assert!(
        lying_cores * 2 >= student_cores,
        "lying {lying_cores} of {student_cores} student cores"
    );
}

/// §4.1 step 4: reverse-lookup counts computed by the attacker agree
/// with ground truth restricted to the core (G_i(u) ⊆ F(u)).
#[test]
fn reverse_lookup_counts_are_consistent_with_ground_truth() {
    let scenario = generate(&ScenarioConfig::tiny());
    let (mut crawler, config) = attack(&scenario, 2);
    let d = run_basic(&mut crawler, &config).unwrap();
    for cand in d.ranked.iter().take(200) {
        let total: u32 = cand.core_friends_by_class.iter().sum();
        let actual =
            d.core.iter().filter(|c| scenario.network.are_friends(c.id, cand.id)).count() as u32;
        assert_eq!(total, actual, "candidate {}", cand.id);
    }
}

/// The roster ground truth is internally consistent with the scenario's
/// summary accessors.
#[test]
fn ground_truth_partitions_students() {
    let scenario = generate(&ScenarioConfig::tiny());
    let truth = GroundTruth::from_scenario(&scenario);
    let minors = scenario.registered_minor_students().len();
    let lying = scenario.lying_minor_students().len();
    assert_eq!(truth.len(), scenario.roster().len());
    // Registered minors + registered adults (lying or true 18+) = all.
    assert!(minors + lying <= truth.len());
    for &u in truth.students() {
        assert!(truth.grad_year(u).is_some());
    }
}
