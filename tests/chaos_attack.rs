//! The tentpole's acceptance test: the full HS1 attack against a
//! hostile platform (`FaultPlan::chaos()`: sporadic 429s with
//! Retry-After, transient 5xxs, simulated latency, mid-body resets,
//! truncated pages, session expiries, and a scripted mid-crawl
//! suspension of the first account).
//!
//! The resilient crawler must *survive* all of it — retry, re-login,
//! re-fetch, fail over to recruited accounts — and because every fault
//! is drawn from a seeded RNG against a virtual clock, two runs with
//! the same seed must be bit-identical, and the attack's findings must
//! match the fault-free run.

use hs_profiler::core::{evaluate, Completeness, EvalPoint};
use hs_profiler::experiments::runner::{full_attack, full_attack_with, AttackRun, Lab};
use hs_profiler::platform::FaultPlan;
use hs_profiler::synth::ScenarioConfig;

const SEED: u64 = 0x9d5f_2013;

struct ChaosOutcome {
    run: AttackRun,
    table4: EvalPoint,
    completeness: Completeness,
    /// (suspensions, recruits, retries-metric, per-endpoint fetches).
    suspensions: u64,
    recruited: u64,
    retry_metric: u64,
    fetch: Vec<(String, u64)>,
    virtual_ms: u64,
}

fn chaos_attack() -> ChaosOutcome {
    let lab = Lab::facebook_chaotic(&ScenarioConfig::hs1(), FaultPlan::chaos());
    let access = lab.resilient_crawler(2, "atk", SEED);
    let run = full_attack_with(&lab, access);
    let truth = lab.ground_truth();
    let t = run.config.school_size_estimate as usize;
    let table4 = evaluate(
        t,
        &run.enhanced.guessed_students(t),
        |u| run.enhanced.inferred_year(u, &run.config),
        &truth,
    );
    let completeness = Completeness::from_access(run.access.as_ref());
    let snap = lab.obs.snapshot();
    let fetch = ["auth", "find-friends", "profile", "friends", "circles", "message", "retry"]
        .iter()
        .map(|e| (e.to_string(), snap.counter(&format!("crawler_fetch_total{{endpoint=\"{e}\"}}"))))
        .collect();
    ChaosOutcome {
        run,
        table4,
        completeness,
        suspensions: snap.counter("crawler_account_suspensions_total"),
        recruited: snap.counter("crawler_accounts_recruited_total"),
        retry_metric: snap.counter("crawler_fetch_total{endpoint=\"retry\"}"),
        fetch,
        virtual_ms: lab.platform.clock.now_ms(),
    }
}

#[test]
fn hs1_attack_survives_chaos_deterministically() {
    // Fault-free baseline for the Table 4 comparison.
    let mut clean_lab = Lab::facebook(&ScenarioConfig::hs1());
    let clean = full_attack(&mut clean_lab, false);
    let clean_truth = clean_lab.ground_truth();
    let t = clean.config.school_size_estimate as usize;
    let clean_t4 = evaluate(
        t,
        &clean.enhanced.guessed_students(t),
        |u| clean.enhanced.inferred_year(u, &clean.config),
        &clean_truth,
    );

    let a = chaos_attack();
    let b = chaos_attack();

    // --- determinism: same seed ⇒ bit-identical runs ---------------------
    assert_eq!(a.run.discovery.seeds, b.run.discovery.seeds);
    assert_eq!(a.run.discovery.claiming, b.run.discovery.claiming);
    let core_a: Vec<_> = a.run.discovery.core.iter().map(|c| (c.id, c.grad_year)).collect();
    let core_b: Vec<_> = b.run.discovery.core.iter().map(|c| (c.id, c.grad_year)).collect();
    assert_eq!(core_a, core_b);
    assert_eq!(a.run.enhanced.guessed_students(t), b.run.enhanced.guessed_students(t));
    assert_eq!(a.run.effort_total, b.run.effort_total, "identical request-for-request cost");
    assert_eq!(a.table4, b.table4);
    assert_eq!(a.completeness, b.completeness);
    assert_eq!(
        (a.suspensions, a.recruited, a.retry_metric, &a.fetch, a.virtual_ms),
        (b.suspensions, b.recruited, b.retry_metric, &b.fetch, b.virtual_ms),
        "chaos telemetry must replay exactly"
    );

    // --- the chaos actually happened, and the crawler survived it --------
    assert!(
        a.run.effort_total.retry_requests > 0,
        "the chaos plan should have forced transport retries"
    );
    assert_eq!(a.suspensions, 1, "the scripted suspension fired");
    assert!(a.recruited >= 1, "suspension triggered the 2→4 escalation");
    assert!(a.virtual_ms > 0, "latency/backoff advanced the virtual clock");

    // --- Effort stays honest under faults: buckets ≡ obs counters --------
    let effort = a.run.effort_total;
    let get = |name: &str| a.fetch.iter().find(|(e, _)| e == name).map(|&(_, n)| n).unwrap_or(0);
    assert_eq!(effort.auth_requests, get("auth"));
    assert_eq!(effort.seed_requests, get("find-friends"));
    assert_eq!(effort.profile_requests, get("profile"));
    assert_eq!(effort.friend_list_requests, get("friends") + get("circles"));
    assert_eq!(effort.message_requests, get("message"));
    assert_eq!(effort.retry_requests, get("retry"));
    assert_eq!(a.retry_metric, effort.retry_requests);

    // --- findings match the fault-free run --------------------------------
    // Seeds and the guessed set are derived from account-independent
    // pages, so surviving the faults must not change *what* was found —
    // only what it cost. (The chaotic run pays more requests.)
    assert_eq!(a.run.discovery.seeds, clean.discovery.seeds);
    assert_eq!(a.table4.guessed, clean_t4.guessed);
    assert_eq!(a.table4.found, clean_t4.found, "Table 4 'found' must survive chaos");
    assert_eq!(a.table4.correct_year, clean_t4.correct_year);
    assert!(
        a.run.effort_total.total() > clean.effort_total.total(),
        "chaos must cost extra requests: {} vs {}",
        a.run.effort_total.total(),
        clean.effort_total.total()
    );
}
