//! Crash-only attacker acceptance test: kill the journaled attacker at
//! injected kill points — including mid-frame, leaving a torn tail —
//! restart it against the *same still-running platform* (chaos faults
//! and live churn armed), and require the resumed run to converge
//! bit-identically with an uninterrupted yardstick: same ranked-guess
//! digest, same found count, same effort ledger, same flight-recorder
//! trace (recovery's own lane excluded).
//!
//! The heavier sweeps live in `exp_extra::crash_recovery` and
//! `examples/crash.rs` (real SIGABRT over TCP); this tier-1 test pins
//! the core identity guarantees on the tiny world.

use hs_profiler::crawler::{recover, KillPlan};
use hs_profiler::experiments::crash_lab::{baseline, crash_lab, killed_and_resumed_on};
use hs_profiler::synth::ScenarioConfig;
use std::path::PathBuf;

const SEED: u64 = 0xC4A5;
const WORKERS: usize = 2;
const CHURN: f64 = 1.0;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hsp-crash-recovery-test");
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir.join(name)
}

/// Journaling must be a pure observer: a journaled run and a bare run
/// of the same seeded attack are indistinguishable in outcome, effort,
/// and trace.
#[test]
fn journaling_changes_nothing() {
    let cfg = ScenarioConfig::tiny();
    let path = test_dir("observer.journal");
    let _ = std::fs::remove_file(&path);
    let bare = baseline(&cfg, SEED, WORKERS, CHURN, None);
    let journaled = baseline(&cfg, SEED, WORKERS, CHURN, Some(&path));
    assert_eq!(bare.digest, journaled.digest, "journaling changed the outcome digest");
    assert_eq!(bare.found, journaled.found, "journaling changed the found count");
    assert_eq!(bare.effort, journaled.effort, "journaling changed the effort ledger");
    assert_eq!(bare.trace_digest, journaled.trace_digest, "journaling changed the trace");
    assert!(journaled.journal_bytes > 0, "journaled baseline wrote no journal");
    assert_eq!(bare.journal_bytes, 0, "bare baseline somehow has a journal");
}

/// Kill the attacker at several points — early, midway, and torn
/// mid-frame — and require every killed-and-resumed run to match the
/// uninterrupted yardstick bit for bit. Each trial runs against its
/// own platform; the yardstick digest is the cross-run invariant.
#[test]
fn killed_and_resumed_is_bit_identical() {
    let cfg = ScenarioConfig::tiny();
    let yardstick = baseline(&cfg, SEED, WORKERS, CHURN, None);

    // How long is the uninterrupted journal? Scales the kill points.
    let probe = test_dir("probe.journal");
    let _ = std::fs::remove_file(&probe);
    let full = baseline(&cfg, SEED, WORKERS, CHURN, Some(&probe));
    assert_eq!(full.digest, yardstick.digest);
    let committed = recover(&probe).expect("probe journal readable").records.len() as u64;
    assert!(committed > 8, "tiny journal too short to place kill points: {committed}");

    let kills = [
        ("early", KillPlan::after(3)),
        ("midway", KillPlan::after(committed / 2)),
        ("torn", KillPlan::torn(committed / 2, 7)),
        ("late", KillPlan::after(committed - 2)),
    ];
    for (label, kill) in kills {
        let lab = crash_lab(&cfg, CHURN);
        let path = test_dir(&format!("kill-{label}.journal"));
        let trial = killed_and_resumed_on(&lab, SEED, WORKERS, kill, &path);
        assert_eq!(trial.resumes, 1, "{label}: expected exactly one resume");
        assert!(trial.recovered_records > 0, "{label}: resume recovered an empty journal");
        let o = &trial.outcome;
        assert_eq!(o.digest, yardstick.digest, "{label}: outcome digest drifted after resume");
        assert_eq!(o.found, yardstick.found, "{label}: found count drifted after resume");
        assert_eq!(o.effort, yardstick.effort, "{label}: effort ledger drifted after resume");
        assert_eq!(o.trace_digest, yardstick.trace_digest, "{label}: trace drifted after resume");
    }
}

/// A torn kill must actually tear: recovery sees a shorter committed
/// prefix than the kill point and discards the torn bytes, yet the
/// resumed attack still converges (covered above) — here we pin the
/// recovery accounting itself.
#[test]
fn torn_tail_is_discarded_not_replayed() {
    let cfg = ScenarioConfig::tiny();
    let lab = crash_lab(&cfg, CHURN);
    let path = test_dir("torn-accounting.journal");
    let trial = killed_and_resumed_on(&lab, SEED, WORKERS, KillPlan::torn(9, 5), &path);
    assert!(trial.torn_bytes > 0, "torn kill left no torn bytes for recovery to cut");
    assert!(
        trial.recovered_records < 9,
        "recovery claims records at or past the kill point: {}",
        trial.recovered_records
    );
    assert!(trial.recovery_us > 0, "recovery reported zero elapsed time");
}
