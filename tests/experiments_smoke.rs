//! Smoke-tests for the cheap experiments (the HS1–HS3-scale runs are
//! exercised by the release-mode `experiments` binary and benches).

use hs_profiler::experiments::{run_experiment, Ctx, ALL_EXPERIMENTS};

#[test]
fn policy_matrix_experiments_render() {
    let mut ctx = Ctx::new(false);
    for id in ["table1", "table6"] {
        let report = run_experiment(&mut ctx, id).expect("known experiment");
        assert_eq!(report.id, id);
        assert!(report.text.contains("Friend List"), "{id} text:\n{}", report.text);
        assert!(report.json.is_object() || report.json.is_array());
        assert!(report.printable().contains(&id.to_uppercase()));
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    let mut ctx = Ctx::new(false);
    assert!(run_experiment(&mut ctx, "table99").is_none());
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    // Every table (1–6) and figure (1–4) of the paper has a runner.
    for required in
        ["table1", "table2", "table3", "table4", "table5", "table6", "fig1", "fig2", "fig3", "fig4"]
    {
        assert!(ALL_EXPERIMENTS.contains(&required), "missing experiment {required}");
    }
    let mut ids: Vec<&str> = ALL_EXPERIMENTS.to_vec();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), ALL_EXPERIMENTS.len(), "duplicate experiment ids");
}
