//! Umbrella crate: re-exports the workspace public API.
pub use hsp_core as core;
pub use hsp_crawler as crawler;
pub use hsp_defense as defense;
pub use hsp_experiments as experiments;
pub use hsp_graph as graph;
pub use hsp_http as http;
pub use hsp_markup as markup;
pub use hsp_obs as obs;
pub use hsp_platform as platform;
pub use hsp_policy as policy;
pub use hsp_synth as synth;
pub use hsp_threats as threats;
