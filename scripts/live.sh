#!/usr/bin/env bash
# Live world: attack a platform that mutates underneath the crawl.
# Sweeps churn intensity (the scenario's derived ChurnModel, scaled)
# against crawl pacing on the full HS1 attack, enforces the freshness
# gates (churn-zero == frozen baseline bit-for-bit; every cell's trace
# audit closes over mutations, stale re-fetches and tombstones; applied
# mutations monotone and non-vacuous; deterministic replay; 1 == 8
# scheduler workers under chaos + detector + churn simultaneously), and
# appends the rows to BENCH_live.json at the workspace root.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> mutation-engine unit suite (schedule determinism, zero-rate no-op)"
cargo test --release -q -p hsp-platform

echo "==> staleness-protocol unit suite (generation stamps, tombstones, re-fetch)"
cargo test --release -q -p hsp-crawler

echo "==> live-world/worker-count equivalence (churning + defended + chaotic, proptest)"
cargo test --release -q --test parallel_equivalence

echo "==> live-world sweep + gates -> BENCH_live.json"
cargo run --release --example live_world
