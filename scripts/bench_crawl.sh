#!/usr/bin/env bash
# Parallel-pipeline benchmark: the full attack at 1/2/4/8 crawl workers
# (throughput against the modeled virtual makespan) and the sharded
# population build at 1/2/4/8 threads, appending rows to
# BENCH_crawl.json at the workspace root. Pass --smoke for the cheap
# tiny-world variant CI runs.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> parallel determinism gate (workers=1 vs 8, chaotic platform)"
cargo test --release -q --test parallel_equivalence

echo "==> crawl/synth scaling -> BENCH_crawl.json"
cargo run --release --example crawl_bench -- "$@"

echo "Crawl bench complete."
