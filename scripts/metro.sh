#!/usr/bin/env bash
# Metro-scale gate: build the full city (>=1M users), run the city-wide
# concurrent attack, and append a headline row to BENCH_metro.json at
# the workspace root. The example enforces its own hard gates (world
# size, build throughput, peak RSS, 1==8 worker determinism); this
# script re-reads the appended row and applies the regression floor on
# build throughput so a slow build fails CI even if someone loosens the
# in-example gate via METRO_MIN_UPS.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# 3x the seed generator's single-thread rate; the metro path sustains
# ~1.3M users/s on the reference box, so 900k leaves headroom for CI
# jitter without letting a real regression through.
MIN_UPS="${MIN_UPS:-900000}"

echo "==> metro city build + city-wide attack -> BENCH_metro.json"
cargo run --release --example metro -- "$@"

echo "==> regression guard: synth_users_per_sec >= ${MIN_UPS}"
python3 - "$MIN_UPS" <<'PY'
import json, sys
floor = float(sys.argv[1])
runs = json.load(open("BENCH_metro.json"))
rows = [r for r in runs if r.get("bench") == "metro" and r.get("config") == "city"]
if not rows:
    sys.exit("no city rows in BENCH_metro.json")
last = rows[-1]
ups = last["synth_users_per_sec"]
print(f"last city row: {last['users']} users at {ups:.0f} users/s "
      f"(peak RSS {last['peak_rss_bytes'] / 2**30:.2f} GiB, "
      f"{last['pct_found']:.1f}% of students identified)")
if ups < floor:
    sys.exit(f"REGRESSION: {ups:.0f} users/s below the {floor:.0f} floor")
print(f"throughput floor {floor:.0f} users/s: PASS")
PY

echo "Metro gate complete."
