#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Everything here is offline-safe — dependencies resolve to the vendored
# path stubs (see vendor/stubs/README.md), so no registry access happens.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> chaos integration test (HS1 attack under FaultPlan::chaos)"
cargo test -q --test chaos_attack

echo "==> crawl bench, smoke mode (parallel determinism + scaling)"
cargo run --release --example crawl_bench -- --smoke

echo "==> overload + transport-chaos soak, smoke mode (2 seeds, tiny attack)"
SOAK_SEEDS=2 SOAK_SCENARIO=tiny cargo run --release --example soak

echo "==> arms-race smoke (tiny world, all detector tiers, frontier gates)"
ARMS_SCENARIO=tiny cargo run --release --example arms_race

echo "==> trace forensics, smoke mode (digest stability + closed audit + overhead gate)"
cargo run --release --example trace_forensics -- --smoke

echo "==> metro smoke (tiny city: build + concurrent attack, 1 == 8 workers)"
cargo run --release --example metro -- --smoke

echo "==> live-world smoke (tiny world: zero-rate == frozen, closed audits, 1 == 8 workers)"
LIVE_SCENARIO=tiny cargo run --release --example live_world

echo "==> crash-only attacker smoke (kill-point sweep, bit-identical process resume)"
cargo run --release --example crash -- --smoke

echo "All checks passed."
