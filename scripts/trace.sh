#!/usr/bin/env bash
# Trace forensics benchmark: the full HS1 attack under chaotic faults
# with the flight recorder off and on, gating recording overhead at
# ≤5% of virtual attack time (it is 0% by construction — spans never
# advance a virtual clock) and appending a `trace_overhead` row to
# BENCH_obs.json at the workspace root. Also writes the forensics
# artifacts (closed TraceAudit + Chrome trace file) under results/.
# Pass --smoke for the cheap tiny-world variant CI runs.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> provenance taxonomy gate (five refusal sources over real TCP)"
cargo test --release -q --test trace_provenance

echo "==> trace overhead + forensics -> BENCH_obs.json, results/trace_*.json"
cargo run --release --example trace_forensics -- "$@"

echo "Trace bench complete."
