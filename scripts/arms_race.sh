#!/usr/bin/env bash
# Defender arms race: sweep the sybil detector's strength tiers against
# the naive and adaptive crawlers on the full HS1 attack, enforce the
# frontier gates (detector-off == baseline bit-for-bit; detection rate
# monotone per crawler mode; strongest tier >=50% session detection on
# the naive crawler; naive attack cost monotone in strength;
# deterministic replay), and append the rows to BENCH_defense.json at
# the workspace root.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> detector unit suite (escalation ladder, determinism, noop-off)"
cargo test --release -q -p hsp-defense

echo "==> detector/worker-count equivalence (defended + chaotic, proptest)"
cargo test --release -q --test parallel_equivalence

echo "==> arms-race sweep + gates -> BENCH_defense.json"
cargo run --release --example arms_race

echo "Arms race complete."
