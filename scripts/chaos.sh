#!/usr/bin/env bash
# Chaos sweep: run the full HS1 attack with the resilient crawler
# against increasing multiples of the canonical FaultPlan::chaos()
# profile, and append the headline survival numbers (completed?, Table 4
# found/correct-year, retries, suspensions, recruited accounts, virtual
# wall-clock) to BENCH_chaos.json at the workspace root.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> chaos determinism gate (full HS1 attack under FaultPlan::chaos, twice)"
cargo test --release -q --test chaos_attack

echo "==> fault-intensity sweep -> BENCH_chaos.json"
cargo run --release --example chaos_sweep

echo "Chaos sweep complete."
