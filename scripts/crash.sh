#!/usr/bin/env bash
# Crash-only attacker gate: kill a real attacker child mid-journal-write
# (torn frame and all), restart it against the same live platform, and
# require bit-identical convergence with an uninterrupted run — then
# hold the journal's write-path cost to <=5% of the attack wall. The
# example enforces its own hard gates (in-process + process-level
# resume identity, the overhead bound); this script re-reads the
# headline row it appends to BENCH_crash.json so a loosened in-example
# gate (CRASH_MAX_OVERHEAD_PCT) still fails CI here.
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5.0}"

echo "==> crash-only attacker: kill-point sweep + overhead -> BENCH_crash.json"
cargo run --release --example crash -- "$@"

echo "==> regression guard: journal_direct_pct <= ${MAX_OVERHEAD_PCT}"
python3 - "$MAX_OVERHEAD_PCT" <<'PY'
import json, sys
ceiling = float(sys.argv[1])
runs = json.load(open("BENCH_crash.json"))
rows = [r for r in runs if r.get("bench") == "crash"]
if not rows:
    sys.exit("no crash rows in BENCH_crash.json")
last = rows[-1]
pct = last["journal_direct_pct"]
print(f"last crash row: config {last['config']}, journal write path "
      f"{pct:.2f}% of attack wall (A/B wall {last['ab_overhead_pct']:+.2f}%), "
      f"{last['committed_records']} committed records, "
      f"successor recovered in {last['process_resume_recovery_us']} us")
if not last.get("process_resume_bit_identical"):
    sys.exit("REGRESSION: killed-and-restarted child did not converge bit-identically")
if last.get("smoke"):
    print(f"smoke row: overhead {pct:.2f}% informational, identity gates held")
elif pct > ceiling:
    sys.exit(f"REGRESSION: journal write path {pct:.2f}% exceeds the {ceiling:.1f}% ceiling")
else:
    print(f"overhead ceiling {ceiling:.1f}%: PASS")
PY

echo "Crash gate complete."
