#!/usr/bin/env bash
# Transport-chaos soak: serve the platform over real TCP behind the
# hardened (overload-protected) server, then run the full HS1 attack
# through ChaosTransport + ResilientExchange while background load
# pushes the server into sustained shedding — once per seed, across a
# seed sweep. Every seed must finish with Table 4 byte-identical to the
# fault-free baseline, zero server panics, zero double-sent POSTs, and
# closed request ledgers across Effort / crawler / chaos / server /
# route accounting. Headline stats (sheds, drain latency, chaos faults,
# admitted p99) are appended to BENCH_soak.json at the workspace root.
#
# Tunables:
#   SOAK_SEEDS     number of seeds to sweep (default 8)
#   SOAK_SCENARIO  "hs1" (full attack, default) or "tiny" (smoke)
#
# Offline-safe: all dependencies resolve to the vendored path stubs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

SOAK_SEEDS="${SOAK_SEEDS:-8}"
SOAK_SCENARIO="${SOAK_SCENARIO:-hs1}"
export SOAK_SEEDS SOAK_SCENARIO

echo "==> soak: ${SOAK_SCENARIO} scenario, ${SOAK_SEEDS} seeds -> BENCH_soak.json"
cargo run --release --example soak

echo "Soak complete."
